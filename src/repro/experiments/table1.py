"""Table 1 — Breakdown of ULCPs in real-world programs and PARSEC.

For every application (two threads, the paper's configuration) this
reports the dynamic lock count and the per-category ULCP pair counts.
Counts are at the workload models' documented 1/100-per-thread scaling
of the paper's raw numbers; the comparison target is the *shape*: which
apps are zero, which categories dominate where.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.analysis import analyze_pairs
from repro.analysis.ulcp import UlcpBreakdown
from repro.experiments.runner import fan_out, format_table, render_failures
from repro.runner import ExecPolicy, TaskFailure, memoized, record_cached
from repro.workloads import TABLE1_ORDER


@dataclass
class Table1Row:
    app: str
    locks: int
    null_lock: int
    read_read: int
    disjoint_write: int
    benign: int
    tlcp: int

    @property
    def total_ulcps(self) -> int:
        return self.null_lock + self.read_read + self.disjoint_write + self.benign


@dataclass
class Table1Result:
    rows_by_app: Dict[str, Table1Row] = field(default_factory=dict)
    failures: Dict[str, TaskFailure] = field(default_factory=dict)

    def rows(self) -> List[List]:
        return [
            [r.app, r.locks, r.null_lock, r.read_read, r.disjoint_write, r.benign]
            for r in self.rows_by_app.values()
        ]

    def render(self) -> str:
        return format_table(
            ["app", "#locks", "NL", "RR", "DW", "benign"],
            self.rows(),
            title="Table 1: ULCP breakdown (2 threads)",
        )


def _cell(task) -> Table1Row:
    """One app's row; a pure function of the task for the worker pool."""
    app, threads, scale, seed = task

    def compute() -> Table1Row:
        recorded = record_cached(app, threads=threads, scale=scale, seed=seed)
        analysis = analyze_pairs(recorded.trace)
        breakdown: UlcpBreakdown = analysis.breakdown
        locks = sum(len(uids) for uids in recorded.trace.lock_schedule.values())
        return Table1Row(
            app=app,
            locks=locks,
            null_lock=breakdown.null_lock,
            read_read=breakdown.read_read,
            disjoint_write=breakdown.disjoint_write,
            benign=breakdown.benign,
            tlcp=breakdown.tlcp,
        )

    params = {"app": app, "threads": threads, "scale": scale, "seed": seed}
    return memoized("table1.cell", params, compute)


def run(
    *, threads: int = 2, scale: float = 1.0, seed: int = 0, jobs: int = 1,
    policy: ExecPolicy = None,
) -> Table1Result:
    tasks = [(app, threads, scale, seed) for app in TABLE1_ORDER]
    result = Table1Result()
    for task, row in zip(tasks, fan_out(_cell, tasks, jobs=jobs, policy=policy)):
        if isinstance(row, TaskFailure):
            result.failures[task[0]] = row
            row = Table1Row(app=task[0], locks=None, null_lock=None,
                            read_read=None, disjoint_write=None, benign=None,
                            tlcp=None)
        result.rows_by_app[row.app] = row
    return result


def main(*, jobs: int = 1, policy: ExecPolicy = None):
    result = run(jobs=jobs, policy=policy)
    print(result.render())
    if result.failures:
        print(render_failures(result.failures))


if __name__ == "__main__":
    main()
