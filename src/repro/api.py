"""The stable public facade: five one-call entry points for the pipeline.

``repro.api`` is the documented, compatibility-guaranteed surface of the
package — the five stages of the PERFPLAY pipeline, one function each::

    record(workload, **cfg)  -> Trace         # run + record an execution
    analyze(trace)           -> PairAnalysis  # identify + classify ULCPs
    transform(trace)         -> Trace         # rewrite to the ULCP-free trace
    replay(trace)            -> ReplayResult  # re-execute under a scheme
    debug(trace)             -> DebugReport   # the whole pipeline, ranked fixes
    report(trace)            -> str           # self-contained HTML debug report

Everything else in the package is internal: it keeps working, but only
these functions (plus :mod:`repro.telemetry` and :mod:`repro.options`)
are covered by the deprecation policy — renamed keyword arguments get a
one-release ``DeprecationWarning`` shim before removal.

``analyze``, ``replay`` and ``report`` take their configuration as one
typed options object (:class:`repro.options.AnalyzeOptions`,
:class:`~repro.options.ReplayOptions`, :class:`~repro.options.ReportOptions`)
shared with the CLI and the ``repro serve`` wire API.  The pre-redesign
bare keyword spellings (``api.analyze(trace, benign_detection=False)``)
still work for one release behind a ``DeprecationWarning`` shim.

Every entry point accepts an optional ``telemetry=`` sink
(:class:`repro.telemetry.Telemetry`); when given, the call's spans and
counters land in that sink instead of the ambient process-wide one.

``workload`` / ``trace`` arguments are forgiving:

* ``record``/``debug`` take a registered workload name (``"mysql"``), a
  :class:`~repro.workloads.base.Workload` instance, or a raw iterable of
  ``(generator, thread_name)`` program pairs;
* ``analyze``/``transform``/``replay``/``debug`` take a
  :class:`~repro.trace.Trace` or a trace-file path (``str``/``Path``).
"""

from __future__ import annotations

import contextlib
import warnings
from pathlib import Path
from typing import Optional, Union

from repro.analysis.pairs import PairAnalysis, analyze_pairs
from repro.analysis.transform import TransformResult
from repro.analysis.transform import transform as _transform_trace
from repro.options import AnalyzeOptions, ReplayOptions, ReportOptions
from repro.perfdebug.framework import DebugReport, PerfPlay
from repro.record.recorder import RecordResult, Recorder
from repro.replay.replayer import Replayer
from repro.replay.results import ReplayResult, ReplaySeries
from repro.telemetry import Telemetry, use_telemetry
from repro.trace.trace import Trace
from repro.workloads.base import Workload, get_workload

__all__ = [
    "record", "analyze", "transform", "replay", "debug", "report",
    "AnalyzeOptions", "ReplayOptions", "ReportOptions",
]

TraceLike = Union[Trace, str, Path]


def _options_shim(func_name: str, cls, options, legacy: dict):
    """Resolve the one-options-object signature against bare kwargs.

    The redesigned entry points take a single typed options object; the
    pre-redesign bare keyword spellings keep working for one release via
    this shim (``DeprecationWarning``).  Mixing both is ambiguous and a
    ``TypeError``; so is an unknown keyword (exactly as before the
    redesign, when the signature itself would have rejected it).
    """
    if not legacy:
        return options if options is not None else cls()
    if options is not None:
        raise TypeError(
            f"{func_name}() got both options= and bare keyword arguments "
            f"{sorted(legacy)}; pass one {cls.__name__}"
        )
    warnings.warn(
        f"{func_name}(**kwargs) bare keyword options are deprecated; "
        f"pass options={cls.__name__}(...)",
        DeprecationWarning,
        stacklevel=3,
    )
    try:
        return cls.from_kwargs(legacy)
    except TypeError as exc:
        raise TypeError(f"{func_name}() {exc}") from None


def _sink(telemetry: Optional[Telemetry]):
    """Activate an explicit sink for the call, or keep the ambient one."""
    if telemetry is None:
        return contextlib.nullcontext()
    return use_telemetry(telemetry)


@contextlib.contextmanager
def _call(name: str, telemetry: Optional[Telemetry]):
    """One facade invocation: a log run id plus the telemetry sink.

    Every log record emitted inside carries ``run_id="<name>-NNNN>"``
    (:func:`repro.log.run_scope`), so diagnostics from one entry-point
    call — including its nested facade calls — are greppable as a unit.
    """
    from repro import log

    with log.run_scope(name), _sink(telemetry):
        yield


def _coerce_trace(trace: TraceLike) -> Trace:
    if isinstance(trace, Trace):
        return trace
    from repro.trace import serialize

    return serialize.load(trace)


def _coerce_programs(workload, *, threads, input_size, scale, seed, workload_kwargs):
    """Resolve a workload spec to (programs, name, params, semaphores)."""
    if isinstance(workload, str):
        workload = get_workload(
            workload, threads=threads, input_size=input_size, scale=scale,
            seed=seed, **workload_kwargs,
        )
    if isinstance(workload, Workload):
        return (
            workload.programs(),
            workload.name,
            workload.params(),
            workload.semaphores(),
        )
    return workload, "", {}, {}


# ------------------------------------------------------------------ record


def record(
    workload,
    *,
    threads: int = 2,
    input_size: str = "simlarge",
    scale: float = 1.0,
    seed: int = 0,
    num_cores: int = 8,
    lock_cost: Optional[int] = None,
    mem_cost: Optional[int] = None,
    full: bool = False,
    telemetry: Optional[Telemetry] = None,
    **workload_kwargs,
) -> Union[Trace, RecordResult]:
    """Run ``workload`` on the simulated machine and record its trace.

    ``workload`` is a registered name, a :class:`Workload` instance, or a
    raw iterable of ``(generator, thread_name)`` pairs.  Workload names
    honour ``threads``/``input_size``/``scale``/``seed`` (extra keyword
    arguments reach the workload constructor); machine parameters are
    ``num_cores``/``lock_cost``/``mem_cost``.

    Returns the recorded :class:`Trace`; ``full=True`` returns the
    underlying :class:`RecordResult` (trace + machine accounting).
    """
    from repro.sim.timebase import DEFAULT_LOCK_COST, DEFAULT_MEM_COST

    with _call("record", telemetry):
        programs, name, params, semaphores = _coerce_programs(
            workload, threads=threads, input_size=input_size, scale=scale,
            seed=seed, workload_kwargs=workload_kwargs,
        )
        recorder = Recorder(
            num_cores=num_cores,
            lock_cost=DEFAULT_LOCK_COST if lock_cost is None else lock_cost,
            mem_cost=DEFAULT_MEM_COST if mem_cost is None else mem_cost,
        )
        result = recorder.record(
            programs, name=name, seed=seed, params=params, semaphores=semaphores
        )
    return result if full else result.trace


# ----------------------------------------------------------------- analyze


def _checkpointer_for(path: Union[str, Path], run_id: str, every: int):
    """Build the segment checkpointer for a resumable streaming analysis.

    The checkpoint is tagged with the trace's index digest and size so a
    checkpoint never resumes against a different (or rewritten) file, and
    lives under the active cache root when there is one — otherwise next
    to the trace itself.
    """
    from repro.errors import TraceError
    from repro.runner import cache as _cache
    from repro.runner.checkpoint import Checkpointer
    from repro.runner.journal import sanitize_run_id
    from repro.trace.segments import ensure_index

    run_id = sanitize_run_id(run_id)
    index = ensure_index(path)
    if index is None:
        raise TraceError(
            f"cannot checkpoint {path}: the segmented file is damaged "
            "(no index could be rebuilt)"
        )
    tag = f"{index.digest}:{index.file_size}"
    store = _cache.active()
    if store is not None:
        ckpt_path = store.root / "checkpoints" / f"{run_id}.ckpt.pkl.gz"
    else:
        p = Path(path)
        ckpt_path = p.with_name(f"{p.name}.{run_id}.ckpt.pkl.gz")
    return Checkpointer(ckpt_path, tag=tag, every=every)


def analyze(
    trace: TraceLike,
    options: Optional[AnalyzeOptions] = None,
    *,
    budget=None,
    on_progress=None,
    telemetry: Optional[Telemetry] = None,
    **legacy,
) -> PairAnalysis:
    """Identify and classify every same-lock pair in ``trace``.

    Returns the :class:`PairAnalysis` (sections, pairs, per-category
    breakdown, cached benign verdicts) that :func:`transform` can reuse.

    ``options`` is an :class:`repro.options.AnalyzeOptions` — the same
    object the CLI and the wire API build.  Its ``stream`` field selects
    the analysis path: the default ``"auto"`` streams segment by segment
    — in memory bounded by one segment, not the trace — when ``trace``
    is a path to a segmented file (see :mod:`repro.trace.segments`), and
    loads the whole trace otherwise.  ``stream=True`` requires a
    segmented file path (raises :class:`~repro.errors.TraceError` for
    traces and monolithic files); ``stream=False`` always loads fully.
    Both paths produce identical results.

    ``options.resume`` names a run id whose streaming scan checkpoints
    every ``options.checkpoint_every`` segments; a killed analysis
    re-invoked with the same id restarts from the last checkpoint
    instead of byte 0 (only meaningful for segmented file paths).
    ``options.jobs > 1`` fans the streaming scan out over
    affinity-pinned worker processes (one thread shard each) with
    results identical to a serial scan; it needs the streaming path and
    is mutually exclusive with ``resume`` (a sharded scan is the fast
    path, not the resumable one).

    ``budget`` is an optional
    :class:`repro.runner.budget.RunBudget`: the call fails fast when the
    deadline has already passed, and memory pressure degrades a
    ``stream=False`` load of a segmented file back to the streaming path.

    ``on_progress`` is an optional callback receiving
    :mod:`repro.observe` progress snapshots (plain dicts, see
    :func:`repro.observe.snapshot_dumps`).  On the serial streaming path
    it fires after every folded segment and once with the terminal
    snapshot; on the in-memory and sharded paths — which have no
    per-segment epochs — it fires once, with the terminal snapshot.
    The returned analysis is byte-identical either way.

    Bare keyword spellings (``benign_detection=``, ``stream=``, ...)
    are deprecated; they keep working for one release via a
    ``DeprecationWarning`` shim.
    """
    from repro.trace import segments as _segments

    opts = _options_shim("analyze", AnalyzeOptions, options, legacy)
    with _call("analyze", telemetry):
        from repro import telemetry as _tel
        from repro.runner import budget as _budget_mod

        if budget is None:
            budget = _budget_mod.active()
        if budget is not None and budget.expired():
            # a spent deadline fails fast; memory pressure, by contrast,
            # is recoverable — it degrades the load below instead
            budget.check()
        want_stream = opts.stream is not False
        if (
            not want_stream
            and budget is not None
            and not isinstance(trace, Trace)
            and _segments.is_segmented_file(trace)
            and budget.over_memory()
        ):
            # graceful degradation: a full load under memory pressure
            # would blow the budget; the streaming path gives the same
            # answer in one segment's worth of memory
            _tel.count("analyze.degraded_to_stream")
            want_stream = True
        if want_stream and not isinstance(trace, Trace):
            if _segments.is_segmented_file(trace):
                from repro.analysis.streaming import analyze_segments

                checkpoint = None
                if opts.resume is not None:
                    checkpoint = _checkpointer_for(
                        trace, opts.resume, opts.checkpoint_every
                    )
                if on_progress is not None and opts.jobs <= 1:
                    from repro.observe.fold import run_with_progress

                    return run_with_progress(
                        trace,
                        benign_detection=opts.benign_detection,
                        checkpoint=checkpoint,
                        on_progress=on_progress,
                    )
                analysis = analyze_segments(
                    trace,
                    benign_detection=opts.benign_detection,
                    checkpoint=checkpoint,
                    jobs=opts.jobs,
                )
                if on_progress is not None:
                    from repro.observe.fold import terminal_snapshot

                    on_progress(terminal_snapshot(analysis))
                return analysis
        if opts.jobs > 1:
            from repro.errors import TraceError

            raise TraceError(
                "analyze(jobs=...) fans out the streaming scan, so it "
                "needs a path to a segmented trace file (write one with "
                "repro.trace.segments.write_segmented or `repro convert`)"
            )
        if opts.stream is True:
            from repro.errors import TraceError

            raise TraceError(
                "analyze(stream=True) needs a path to a segmented trace "
                "file (write one with repro.trace.segments.write_segmented "
                "or `repro convert`)"
            )
        if opts.resume is not None:
            from repro.errors import TraceError

            raise TraceError(
                "analyze(resume=...) needs a path to a segmented trace "
                "file; in-memory traces and monolithic files have no "
                "segment boundaries to checkpoint at"
            )
        analysis = analyze_pairs(
            _coerce_trace(trace), benign_detection=opts.benign_detection
        )
        if on_progress is not None:
            from repro.observe.fold import terminal_snapshot

            on_progress(terminal_snapshot(analysis))
        return analysis


# --------------------------------------------------------------- transform


def transform(
    trace: TraceLike,
    *,
    full: bool = False,
    telemetry: Optional[Telemetry] = None,
    **options,
) -> Union[Trace, TransformResult]:
    """Rewrite ``trace`` into its ULCP-free counterpart (RULE 1-4).

    Returns the transformed :class:`Trace`; ``full=True`` returns the
    whole :class:`TransformResult` (analysis, topology, resync plan).
    Extra keyword options (``benign_detection``, ``order_edges``,
    ``fix_categories``, ``analysis``) pass through to the transformation.
    """
    with _call("transform", telemetry):
        result = _transform_trace(_coerce_trace(trace), **options)
    if not isinstance(result.trace, Trace):
        # the numpy rewrite emits a ColumnarTrace; the facade contract
        # is a plain, independently mutable Trace
        result.trace = result.trace.to_trace()
    return result if full else result.trace


# ------------------------------------------------------------------ replay


def _journal_for(run_id: str, spec: dict):
    """Attach to (or create) the run journal ``run_id`` under the cache."""
    from repro.errors import CacheError
    from repro.runner import cache as _cache
    from repro.runner import journal as _journal

    store = _cache.active()
    if store is None:
        raise CacheError(
            "resume= needs an active trace cache to hold the run journal "
            "(enter one with repro.runner.use_cache or repro --cache)"
        )
    run_id = _journal.sanitize_run_id(run_id)
    if _journal.journal_path(store.root, run_id).exists():
        return _journal.RunJournal.attach(store.root, run_id)
    return _journal.RunJournal.create(store.root, run_id, spec)


def replay(
    trace: TraceLike,
    options: Optional[ReplayOptions] = None,
    *,
    telemetry: Optional[Telemetry] = None,
    **legacy,
) -> Union[ReplayResult, ReplaySeries]:
    """Replay ``trace`` under ``options.scheme`` (one of ``ALL_SCHEMES``).

    ``options`` is a :class:`repro.options.ReplayOptions`.  With
    ``runs=1`` (the default) returns a single :class:`ReplayResult`;
    with ``runs>1`` returns a :class:`ReplaySeries` of seeded runs
    (``seed``, ``seed+1``, ...; default seed 0), fanned over ``jobs``
    worker processes — parallel output is identical to serial.

    ``timeline=True`` (single runs only) collects live interval lanes
    into the result's ``intervals`` for :mod:`repro.timeline`.

    ``resume`` names a run id journaled under the active cache
    (:mod:`repro.runner.journal`): each completed run is recorded as it
    lands, and re-invoking with the same id skips runs the journal
    already holds — the series is identical to an uninterrupted call.
    Needs ``runs>1`` and an active cache.

    Bare keyword spellings (``scheme=``, ``runs=``, ``seed=``, ...) are
    deprecated; they keep working for one release via a
    ``DeprecationWarning`` shim.  The pre-redesign ``base_seed=``
    spelling (deprecated since the facade's introduction) is retired —
    it now raises ``TypeError`` like any other unknown keyword.
    """
    opts = _options_shim("replay", ReplayOptions, options, legacy)
    opts.validate()
    with _call("replay", telemetry):
        loaded = _coerce_trace(trace)
        replayer = Replayer(jitter=opts.jitter)
        if opts.runs <= 1:
            if opts.resume is not None:
                raise ValueError(
                    "replay(resume=...) needs runs>1; a single replay has "
                    "no per-run progress to journal"
                )
            return replayer.replay(
                loaded, scheme=opts.scheme, seed=opts.seed,
                timeline=opts.timeline,
            )
        if opts.resume is not None:
            from repro.runner.journal import use_journal

            spec = {
                "api": "replay", "scheme": opts.scheme, "runs": opts.runs,
                "seed": opts.seed, "jitter": opts.jitter,
            }
            with _journal_for(opts.resume, spec) as journal, \
                    use_journal(journal):
                return replayer.replay_many(
                    loaded, scheme=opts.scheme, runs=opts.runs,
                    seed=opts.seed, jobs=opts.jobs,
                )
        return replayer.replay_many(
            loaded, scheme=opts.scheme, runs=opts.runs, seed=opts.seed,
            jobs=opts.jobs,
        )


# ------------------------------------------------------------------- debug


def debug(
    trace,
    *,
    threads: int = 2,
    input_size: str = "simlarge",
    scale: float = 1.0,
    seed: int = 0,
    jitter: float = 0.0,
    benign_detection: bool = True,
    order_edges: bool = True,
    timeline: bool = False,
    telemetry: Optional[Telemetry] = None,
    **workload_kwargs,
) -> DebugReport:
    """The whole pipeline: record (if needed), transform, replay, rank.

    ``trace`` may be a :class:`Trace`, a trace-file path, a registered
    workload name, a :class:`Workload`, or raw program pairs — anything
    that is not already a trace is recorded first (honouring the workload
    parameters, exactly like :func:`record`).  Returns the ranked
    :class:`DebugReport`; ``timeline=True`` makes both replays collect
    interval lanes for :meth:`DebugReport.timelines`.
    """
    with _call("debug", telemetry):
        if isinstance(trace, (str, Path)) and not _is_workload_name(trace):
            trace = _coerce_trace(trace)
        if not isinstance(trace, Trace):
            trace = record(
                trace, threads=threads, input_size=input_size, scale=scale,
                seed=seed, **workload_kwargs,
            )
        perfplay = PerfPlay(
            jitter=jitter,
            benign_detection=benign_detection,
            order_edges=order_edges,
        )
        return perfplay.analyze(trace, seed=seed, timeline=timeline)


# ------------------------------------------------------------------ report


def report(
    trace,
    transformed: Optional[TraceLike] = None,
    options: Optional[ReportOptions] = None,
    *,
    output: Optional[Union[str, Path]] = None,
    telemetry: Optional[Telemetry] = None,
    **legacy,
) -> str:
    """Render the full debugging session as one self-contained HTML file.

    ``trace`` accepts everything :func:`debug` does (trace, trace path,
    workload name, program pairs).  The pipeline runs with jitter 0 and
    live timeline collection, so the report's waterfalls show the exact
    replayed schedules and reconcile with the machine accounting.
    ``options`` is a :class:`repro.options.ReportOptions` (workload
    parameters for workload-name inputs, analysis knobs for both).

    ``transformed`` optionally supplies an already-saved ULCP-free trace
    (e.g. the output of ``repro transform``) to render as the right-hand
    waterfall instead of the session's own transformed replay.

    Returns the HTML text; ``output`` additionally writes it to a file.
    The document is byte-deterministic for a fixed input trace: repeated
    runs (and ``--jobs`` variations upstream) produce identical bytes.

    Bare keyword spellings (``threads=``, ``seed=``, extra workload
    keyword arguments, ...) are deprecated; they keep working for one
    release via a ``DeprecationWarning`` shim (unknown names fold into
    ``ReportOptions.workload_kwargs``).
    """
    from dataclasses import fields as _fields

    from repro.perfdebug.report import render_html_report
    from repro.telemetry import to_dict
    from repro.timeline.build import build_timeline

    if legacy:
        # split bare kwargs into ReportOptions fields and workload
        # passthrough arguments before the common shim
        known = {f.name for f in _fields(ReportOptions)}
        extra = {k: legacy.pop(k) for k in list(legacy) if k not in known}
        if extra:
            legacy.setdefault("workload_kwargs", extra)
    opts = _options_shim("report", ReportOptions, options, legacy)
    sink = telemetry if telemetry is not None else Telemetry()
    with _call("report", sink):
        session = debug(
            trace,
            threads=opts.threads,
            input_size=opts.input_size,
            scale=opts.scale,
            seed=opts.seed,
            jitter=0.0,
            benign_detection=opts.benign_detection,
            order_edges=opts.order_edges,
            timeline=True,
            **opts.workload_kwargs,
        )
        original_timeline, free_timeline = session.timelines()
        if transformed is not None:
            free_timeline = build_timeline(
                _coerce_trace(transformed),
                analysis=session.transform_result.analysis,
            )
    html_text = render_html_report(
        session,
        original_timeline=original_timeline,
        free_timeline=free_timeline,
        telemetry_data=to_dict(sink, timings=False),
    )
    if output is not None:
        Path(output).write_text(html_text, encoding="utf-8")
    return html_text


def _is_workload_name(value) -> bool:
    if not isinstance(value, str):
        return False
    from repro.workloads.base import _REGISTRY

    return value in _REGISTRY
