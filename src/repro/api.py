"""The stable public facade: five one-call entry points for the pipeline.

``repro.api`` is the documented, compatibility-guaranteed surface of the
package — the five stages of the PERFPLAY pipeline, one function each::

    record(workload, **cfg)  -> Trace         # run + record an execution
    analyze(trace)           -> PairAnalysis  # identify + classify ULCPs
    transform(trace)         -> Trace         # rewrite to the ULCP-free trace
    replay(trace)            -> ReplayResult  # re-execute under a scheme
    debug(trace)             -> DebugReport   # the whole pipeline, ranked fixes
    report(trace)            -> str           # self-contained HTML debug report

Everything else in the package is internal: it keeps working, but only
these functions (plus :mod:`repro.telemetry`) are covered by the
deprecation policy — renamed keyword arguments get a one-release
``DeprecationWarning`` shim before removal.

Every entry point accepts an optional ``telemetry=`` sink
(:class:`repro.telemetry.Telemetry`); when given, the call's spans and
counters land in that sink instead of the ambient process-wide one.

``workload`` / ``trace`` arguments are forgiving:

* ``record``/``debug`` take a registered workload name (``"mysql"``), a
  :class:`~repro.workloads.base.Workload` instance, or a raw iterable of
  ``(generator, thread_name)`` program pairs;
* ``analyze``/``transform``/``replay``/``debug`` take a
  :class:`~repro.trace.Trace` or a trace-file path (``str``/``Path``).
"""

from __future__ import annotations

import contextlib
import warnings
from pathlib import Path
from typing import Optional, Union

from repro.analysis.pairs import PairAnalysis, analyze_pairs
from repro.analysis.transform import TransformResult
from repro.analysis.transform import transform as _transform_trace
from repro.perfdebug.framework import DebugReport, PerfPlay
from repro.record.recorder import RecordResult, Recorder
from repro.replay.replayer import Replayer
from repro.replay.results import ReplayResult, ReplaySeries
from repro.replay.schemes import ALL_SCHEMES, ELSC_S
from repro.telemetry import Telemetry, use_telemetry
from repro.trace.trace import Trace
from repro.workloads.base import Workload, get_workload

__all__ = ["record", "analyze", "transform", "replay", "debug", "report"]

TraceLike = Union[Trace, str, Path]


def _shim_renamed_kwargs(func_name: str, kwargs: dict, renames: dict) -> None:
    """Accept pre-redesign keyword spellings for one release, with a warning."""
    for old, new in renames.items():
        if old in kwargs:
            if new in kwargs:
                raise TypeError(
                    f"{func_name}() got both {old!r} and its replacement {new!r}"
                )
            warnings.warn(
                f"{func_name}(... {old}=) is deprecated; use {new}=",
                DeprecationWarning,
                stacklevel=3,
            )
            kwargs[new] = kwargs.pop(old)


def _sink(telemetry: Optional[Telemetry]):
    """Activate an explicit sink for the call, or keep the ambient one."""
    if telemetry is None:
        return contextlib.nullcontext()
    return use_telemetry(telemetry)


@contextlib.contextmanager
def _call(name: str, telemetry: Optional[Telemetry]):
    """One facade invocation: a log run id plus the telemetry sink.

    Every log record emitted inside carries ``run_id="<name>-NNNN>"``
    (:func:`repro.log.run_scope`), so diagnostics from one entry-point
    call — including its nested facade calls — are greppable as a unit.
    """
    from repro import log

    with log.run_scope(name), _sink(telemetry):
        yield


def _coerce_trace(trace: TraceLike) -> Trace:
    if isinstance(trace, Trace):
        return trace
    from repro.trace import serialize

    return serialize.load(trace)


def _coerce_programs(workload, *, threads, input_size, scale, seed, workload_kwargs):
    """Resolve a workload spec to (programs, name, params, semaphores)."""
    if isinstance(workload, str):
        workload = get_workload(
            workload, threads=threads, input_size=input_size, scale=scale,
            seed=seed, **workload_kwargs,
        )
    if isinstance(workload, Workload):
        return (
            workload.programs(),
            workload.name,
            workload.params(),
            workload.semaphores(),
        )
    return workload, "", {}, {}


# ------------------------------------------------------------------ record


def record(
    workload,
    *,
    threads: int = 2,
    input_size: str = "simlarge",
    scale: float = 1.0,
    seed: int = 0,
    num_cores: int = 8,
    lock_cost: Optional[int] = None,
    mem_cost: Optional[int] = None,
    full: bool = False,
    telemetry: Optional[Telemetry] = None,
    **workload_kwargs,
) -> Union[Trace, RecordResult]:
    """Run ``workload`` on the simulated machine and record its trace.

    ``workload`` is a registered name, a :class:`Workload` instance, or a
    raw iterable of ``(generator, thread_name)`` pairs.  Workload names
    honour ``threads``/``input_size``/``scale``/``seed`` (extra keyword
    arguments reach the workload constructor); machine parameters are
    ``num_cores``/``lock_cost``/``mem_cost``.

    Returns the recorded :class:`Trace`; ``full=True`` returns the
    underlying :class:`RecordResult` (trace + machine accounting).
    """
    from repro.sim.timebase import DEFAULT_LOCK_COST, DEFAULT_MEM_COST

    with _call("record", telemetry):
        programs, name, params, semaphores = _coerce_programs(
            workload, threads=threads, input_size=input_size, scale=scale,
            seed=seed, workload_kwargs=workload_kwargs,
        )
        recorder = Recorder(
            num_cores=num_cores,
            lock_cost=DEFAULT_LOCK_COST if lock_cost is None else lock_cost,
            mem_cost=DEFAULT_MEM_COST if mem_cost is None else mem_cost,
        )
        result = recorder.record(
            programs, name=name, seed=seed, params=params, semaphores=semaphores
        )
    return result if full else result.trace


# ----------------------------------------------------------------- analyze


def analyze(
    trace: TraceLike,
    *,
    benign_detection: bool = True,
    stream: Union[bool, str] = "auto",
    telemetry: Optional[Telemetry] = None,
) -> PairAnalysis:
    """Identify and classify every same-lock pair in ``trace``.

    Returns the :class:`PairAnalysis` (sections, pairs, per-category
    breakdown, cached benign verdicts) that :func:`transform` can reuse.

    ``stream`` selects the analysis path.  The default ``"auto"``
    streams segment by segment — in memory bounded by one segment, not
    the trace — when ``trace`` is a path to a segmented file (see
    :mod:`repro.trace.segments`), and loads the whole trace otherwise.
    ``stream=True`` requires a segmented file path (raises
    :class:`~repro.errors.TraceError` for traces and monolithic files);
    ``stream=False`` always loads fully.  Both paths produce identical
    results.
    """
    from repro.trace import segments as _segments

    with _call("analyze", telemetry):
        if stream is not False and not isinstance(trace, Trace):
            if _segments.is_segmented_file(trace):
                from repro.analysis.streaming import analyze_segments

                return analyze_segments(
                    trace, benign_detection=benign_detection
                )
        if stream is True:
            from repro.errors import TraceError

            raise TraceError(
                "analyze(stream=True) needs a path to a segmented trace "
                "file (write one with repro.trace.segments.write_segmented "
                "or `repro convert`)"
            )
        return analyze_pairs(
            _coerce_trace(trace), benign_detection=benign_detection
        )


# --------------------------------------------------------------- transform


def transform(
    trace: TraceLike,
    *,
    full: bool = False,
    telemetry: Optional[Telemetry] = None,
    **options,
) -> Union[Trace, TransformResult]:
    """Rewrite ``trace`` into its ULCP-free counterpart (RULE 1-4).

    Returns the transformed :class:`Trace`; ``full=True`` returns the
    whole :class:`TransformResult` (analysis, topology, resync plan).
    Extra keyword options (``benign_detection``, ``order_edges``,
    ``fix_categories``, ``analysis``) pass through to the transformation.
    """
    with _call("transform", telemetry):
        result = _transform_trace(_coerce_trace(trace), **options)
    return result if full else result.trace


# ------------------------------------------------------------------ replay


def replay(
    trace: TraceLike,
    *,
    scheme: str = ELSC_S,
    runs: int = 1,
    seed: Optional[int] = None,
    jitter: float = 0.02,
    jobs: int = 1,
    timeline: bool = False,
    telemetry: Optional[Telemetry] = None,
    **deprecated,
) -> Union[ReplayResult, ReplaySeries]:
    """Replay ``trace`` under ``scheme`` (one of ``ALL_SCHEMES``).

    With ``runs=1`` (the default) returns a single :class:`ReplayResult`;
    with ``runs>1`` returns a :class:`ReplaySeries` of seeded runs
    (``seed``, ``seed+1``, ...; default seed 0), fanned over ``jobs``
    worker processes — parallel output is identical to serial.

    ``timeline=True`` (single runs only) collects live interval lanes
    into the result's ``intervals`` for :mod:`repro.timeline`.
    """
    if seed is not None:
        deprecated["seed"] = seed
    _shim_renamed_kwargs("replay", deprecated, {"base_seed": "seed"})
    seed = deprecated.pop("seed", 0)
    if deprecated:
        raise TypeError(
            f"replay() got unexpected keyword arguments {sorted(deprecated)}"
        )
    if scheme not in ALL_SCHEMES:
        raise ValueError(f"unknown scheme {scheme!r} (expected one of {ALL_SCHEMES})")
    with _call("replay", telemetry):
        loaded = _coerce_trace(trace)
        replayer = Replayer(jitter=jitter)
        if runs <= 1:
            return replayer.replay(
                loaded, scheme=scheme, seed=seed, timeline=timeline
            )
        return replayer.replay_many(
            loaded, scheme=scheme, runs=runs, seed=seed, jobs=jobs
        )


# ------------------------------------------------------------------- debug


def debug(
    trace,
    *,
    threads: int = 2,
    input_size: str = "simlarge",
    scale: float = 1.0,
    seed: int = 0,
    jitter: float = 0.0,
    benign_detection: bool = True,
    order_edges: bool = True,
    timeline: bool = False,
    telemetry: Optional[Telemetry] = None,
    **workload_kwargs,
) -> DebugReport:
    """The whole pipeline: record (if needed), transform, replay, rank.

    ``trace`` may be a :class:`Trace`, a trace-file path, a registered
    workload name, a :class:`Workload`, or raw program pairs — anything
    that is not already a trace is recorded first (honouring the workload
    parameters, exactly like :func:`record`).  Returns the ranked
    :class:`DebugReport`; ``timeline=True`` makes both replays collect
    interval lanes for :meth:`DebugReport.timelines`.
    """
    with _call("debug", telemetry):
        if isinstance(trace, (str, Path)) and not _is_workload_name(trace):
            trace = _coerce_trace(trace)
        if not isinstance(trace, Trace):
            trace = record(
                trace, threads=threads, input_size=input_size, scale=scale,
                seed=seed, **workload_kwargs,
            )
        perfplay = PerfPlay(
            jitter=jitter,
            benign_detection=benign_detection,
            order_edges=order_edges,
        )
        return perfplay.analyze(trace, seed=seed, timeline=timeline)


# ------------------------------------------------------------------ report


def report(
    trace,
    transformed: Optional[TraceLike] = None,
    *,
    output: Optional[Union[str, Path]] = None,
    threads: int = 2,
    input_size: str = "simlarge",
    scale: float = 1.0,
    seed: int = 0,
    benign_detection: bool = True,
    order_edges: bool = True,
    telemetry: Optional[Telemetry] = None,
    **workload_kwargs,
) -> str:
    """Render the full debugging session as one self-contained HTML file.

    ``trace`` accepts everything :func:`debug` does (trace, trace path,
    workload name, program pairs).  The pipeline runs with jitter 0 and
    live timeline collection, so the report's waterfalls show the exact
    replayed schedules and reconcile with the machine accounting.

    ``transformed`` optionally supplies an already-saved ULCP-free trace
    (e.g. the output of ``repro transform``) to render as the right-hand
    waterfall instead of the session's own transformed replay.

    Returns the HTML text; ``output`` additionally writes it to a file.
    The document is byte-deterministic for a fixed input trace: repeated
    runs (and ``--jobs`` variations upstream) produce identical bytes.
    """
    from repro.perfdebug.report import render_html_report
    from repro.telemetry import to_dict
    from repro.timeline.build import build_timeline

    sink = telemetry if telemetry is not None else Telemetry()
    with _call("report", sink):
        session = debug(
            trace,
            threads=threads,
            input_size=input_size,
            scale=scale,
            seed=seed,
            jitter=0.0,
            benign_detection=benign_detection,
            order_edges=order_edges,
            timeline=True,
            **workload_kwargs,
        )
        original_timeline, free_timeline = session.timelines()
        if transformed is not None:
            free_timeline = build_timeline(
                _coerce_trace(transformed),
                analysis=session.transform_result.analysis,
            )
    html_text = render_html_report(
        session,
        original_timeline=original_timeline,
        free_timeline=free_timeline,
        telemetry_data=to_dict(sink, timings=False),
    )
    if output is not None:
        Path(output).write_text(html_text, encoding="utf-8")
    return html_text


def _is_workload_name(value) -> bool:
    if not isinstance(value, str):
        return False
    from repro.workloads.base import _REGISTRY

    return value in _REGISTRY
