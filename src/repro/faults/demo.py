"""End-to-end fault-tolerance demo: ``repro faults demo``.

One seeded :class:`~repro.faults.FaultPlan` drives the whole pipeline
through its recovery paths:

* a worker crash on task 1's first attempt — the supervisor replaces the
  worker and the retry succeeds, so the cell still renders;
* a persistent crash on task 2 — retries exhaust, the task is
  quarantined as a structured failure and its row degrades to ``n/a``;
* a truncated trace file — the strict loader rejects it, salvage mode
  recovers the longest well-formed prefix and the prefix still replays.

With ``enable_faults=False`` the same command runs the same pipeline
with no plan installed; its table output is bit-for-bit identical to a
serial, fault-free run (the determinism invariant the retry/timeout
machinery must preserve).
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import faults
from repro.errors import TraceError
from repro.experiments import table1
from repro.replay import Replayer
from repro.runner import ExecPolicy, record_cached
from repro.trace import dump, load, load_trace

#: the plan the demo installs (seeded, so every run injects identically)
DEMO_RULES = (
    "pool.worker_crash@1:attempt=0",  # transient: first attempt only
    "pool.worker_crash@2:times=99",   # persistent: survives every retry
    "trace.truncate",                 # damage the next dumped trace file
)


def demo_plan(seed: int = 0) -> faults.FaultPlan:
    return faults.FaultPlan.parse(list(DEMO_RULES), seed=seed)


def run_demo(
    *,
    seed: int = 0,
    jobs: int = 2,
    scale: float = 1.0,
    enable_faults: bool = True,
    out=print,
) -> int:
    """Run the demo; returns the number of quarantined tasks."""
    policy = ExecPolicy(timeout=60.0, retries=2, partial=True)

    if not enable_faults:
        out("faults disabled: plain run (must match a serial, fault-free run)")
        result = table1.run(scale=scale, seed=seed, jobs=jobs)
        out(result.render())
        return 0

    plan = demo_plan(seed)
    out("installed fault plan:")
    for line in plan.describe().splitlines():
        out(f"  {line}")

    with faults.use_plan(plan):
        out("")
        out(f"-- stage 1: table1 across {jobs} worker(s), "
            f"retries={policy.retries}, partial mode --")
        result = table1.run(scale=scale, seed=seed, jobs=jobs, policy=policy)
        out(result.render())
        for app, failure in result.failures.items():
            out(f"quarantined {app}: {failure.render()}")

        out("")
        out("-- stage 2: truncated trace file, strict vs salvage --")
        recorded = record_cached("pbzip2", threads=2, scale=scale, seed=seed)
        with tempfile.TemporaryDirectory(prefix="repro-faults-demo-") as tmp:
            path = Path(tmp) / "damaged.trace.gz"
            dump(recorded.trace, path)  # the plan truncates it on the way out
            try:
                load(path)
                out("strict load: unexpectedly succeeded (no damage injected?)")
            except TraceError as exc:
                out(f"strict load: {exc}")
            import warnings

            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                loaded = load_trace(path, salvage=True)
            out(f"salvage load: {loaded.report.render()}")
            replay = Replayer(jitter=0.0).replay(loaded.trace)
            out(
                f"salvaged prefix replays: {len(loaded.trace)} events, "
                f"end_time={replay.end_time}"
            )
    return len(result.failures)


if __name__ == "__main__":
    run_demo()
