"""Deterministic fault injection: seeded plans firing at named sites.

A :class:`FaultPlan` is a seeded set of :class:`FaultRule` objects, each
naming an injection *site* compiled into the pipeline (see :data:`SITES`).
Code at a site asks the active plan whether to fire via
:func:`fires`; with no active plan the call is a near-free ``False``, so
production runs pay nothing.  Every decision is a pure function of the
plan (seed, rules, per-rule hit counters) and the site's invocation key,
so a failing recovery path replays identically under the same plan —
the whole point: recovery code is exercised deterministically, in tests
and via the ``repro faults`` CLI.

Rule selectors:

* ``key`` — fire only when the site reports this invocation key (e.g.
  the task index for pool sites, the thread id for sim sites);
* ``attempt`` — for retry-aware sites (the worker pool), fire only on
  this 0-based attempt, letting a test inject a crash that a retry then
  survives;
* ``nth``/``times`` — fire on the nth matching hit (1-based) and the
  ``times - 1`` hits after it;
* ``rate`` — instead of hit counting, fire when a deterministic hash of
  ``(seed, site, key, hit#)`` falls below the rate.

Hit counters are per-process: a plan shipped to a worker process starts
with fresh counters (``__getstate__`` drops them), so cross-process
sites should select by ``key``, which is stable across processes.
"""

from __future__ import annotations

import contextlib
import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Optional, Sequence, Tuple, Union

from repro.errors import FaultInjected, ReproError

#: every compiled-in injection site, with what firing does there
SITES = {
    "pool.worker_crash": "worker process exits hard (SIGKILL-style) mid-task",
    "pool.worker_hang": "worker sleeps past any per-task timeout",
    "cache.blob_corrupt": "cached result blob bytes are corrupted before a read",
    "cache.trace_corrupt": "cached trace bytes are corrupted before a read",
    "trace.truncate": "a dumped trace file loses its tail",
    "trace.bitflip": "a dumped trace file gets one byte flipped",
    "sim.thread_exception": "a simulated thread raises FaultInjected mid-run",
    "sim.thread_kill": "a simulated thread dies silently, its locks still held",
}


@dataclass(frozen=True)
class FaultRule:
    """When one site fires.  See the module docstring for the selectors."""

    site: str
    key: object = None
    attempt: Optional[int] = None
    nth: int = 1
    times: int = 1
    rate: Optional[float] = None

    def __post_init__(self):
        if self.site not in SITES:
            known = ", ".join(sorted(SITES))
            raise ReproError(f"unknown fault site {self.site!r}; known: {known}")
        if self.nth < 1 or self.times < 1:
            raise ReproError("fault rule nth/times must be >= 1")

    def describe(self) -> str:
        parts = [self.site]
        if self.key is not None:
            parts.append(f"key={self.key!r}")
        if self.attempt is not None:
            parts.append(f"attempt={self.attempt}")
        if self.rate is not None:
            parts.append(f"rate={self.rate:g}")
        elif (self.nth, self.times) != (1, 1):
            parts.append(f"nth={self.nth} times={self.times}")
        return " ".join(parts)


def parse_rule(spec: str) -> FaultRule:
    """Parse a compact CLI rule spec: ``site[@key][:opt=val,...]``.

    Options: ``nth``, ``times``, ``attempt`` (ints), ``rate`` (float).
    An integer-looking key is parsed as an int (pool task indexes).

    >>> parse_rule("pool.worker_crash@2:attempt=0")
    FaultRule(site='pool.worker_crash', key=2, attempt=0, nth=1, times=1, rate=None)
    """
    body, _, opts = spec.partition(":")
    site, _, key_text = body.partition("@")
    kwargs: dict = {"site": site.strip()}
    if key_text:
        key_text = key_text.strip()
        kwargs["key"] = int(key_text) if _is_int(key_text) else key_text
    for item in filter(None, (part.strip() for part in opts.split(","))):
        name, _, value = item.partition("=")
        name = name.strip()
        if name not in ("nth", "times", "attempt", "rate") or not value:
            raise ReproError(f"bad fault rule option {item!r} in {spec!r}")
        kwargs[name] = float(value) if name == "rate" else int(value)
    return FaultRule(**kwargs)


def _is_int(text: str) -> bool:
    try:
        int(text)
    except ValueError:
        return False
    return True


class FaultPlan:
    """A seeded, deterministic set of fault rules."""

    def __init__(self, seed: int = 0, rules: Iterable[FaultRule] = ()):
        self.seed = seed
        self.rules: Tuple[FaultRule, ...] = tuple(rules)
        self._hits: Dict[int, int] = {}

    @classmethod
    def parse(cls, specs: Sequence[str], *, seed: int = 0) -> "FaultPlan":
        return cls(seed=seed, rules=[parse_rule(spec) for spec in specs])

    def __getstate__(self):
        # workers start with fresh hit counters; select cross-process
        # sites by key, which is process-independent
        return {"seed": self.seed, "rules": self.rules}

    def __setstate__(self, state):
        self.seed = state["seed"]
        self.rules = state["rules"]
        self._hits = {}

    def fires(self, site: str, key=None, attempt=None) -> bool:
        """Record a hit at ``site`` and decide whether any rule fires."""
        fired = False
        for i, rule in enumerate(self.rules):
            if rule.site != site:
                continue
            if rule.key is not None and rule.key != key:
                continue
            if rule.attempt is not None and rule.attempt != attempt:
                continue
            count = self._hits.get(i, 0) + 1
            self._hits[i] = count
            if rule.rate is not None:
                if _fraction(self.seed, site, key, count) < rule.rate:
                    fired = True
            elif rule.nth <= count < rule.nth + rule.times:
                fired = True
        return fired

    def reset(self) -> None:
        """Forget all hit counters (a fresh run under the same plan)."""
        self._hits = {}

    def describe(self) -> str:
        lines = [f"fault plan (seed={self.seed}):"]
        lines += [f"  {rule.describe()}" for rule in self.rules]
        return "\n".join(lines)

    def __repr__(self):
        return f"FaultPlan(seed={self.seed}, rules={self.rules!r})"


def _fraction(seed: int, site: str, key, count: int) -> float:
    digest = hashlib.sha256(
        f"{seed}:{site}:{key!r}:{count}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


# ------------------------------------------------------------- active plan

_ACTIVE: Optional[FaultPlan] = None


def configure(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Set the process-wide active plan (``None`` disables injection)."""
    global _ACTIVE
    _ACTIVE = plan
    return _ACTIVE


def active() -> Optional[FaultPlan]:
    return _ACTIVE


def enabled() -> bool:
    """Cheap guard for hot paths: is any plan active?"""
    return _ACTIVE is not None


@contextlib.contextmanager
def use_plan(plan: Optional[FaultPlan]):
    """Temporarily activate (or disable, with ``None``) a fault plan."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = plan
    try:
        yield plan
    finally:
        _ACTIVE = previous


def fires(site: str, key=None, attempt=None) -> bool:
    """Ask the active plan whether ``site`` fires (False with no plan)."""
    if _ACTIVE is None:
        return False
    return _ACTIVE.fires(site, key=key, attempt=attempt)


def fire(site: str, key=None, attempt=None) -> None:
    """Raise :class:`FaultInjected` if the active plan says so."""
    if fires(site, key=key, attempt=attempt):
        raise FaultInjected(site, key=key)


# --------------------------------------------------------- corruption tools


def corrupt_file(path: Union[str, Path], mode: str) -> None:
    """Deterministically damage a file in place.

    ``mode="truncate"`` keeps the first half of the bytes; ``"bitflip"``
    XORs one byte a third of the way in.  Both are pure functions of the
    file content, so a corrupted artifact is reproducible.
    """
    path = Path(path)
    data = path.read_bytes()
    if not data:
        return
    if mode == "truncate":
        path.write_bytes(data[: max(1, len(data) // 2)])
    elif mode == "bitflip":
        pos = len(data) // 3
        flipped = bytes([data[pos] ^ 0x55])
        path.write_bytes(data[:pos] + flipped + data[pos + 1:])
    else:
        raise ReproError(f"unknown corruption mode {mode!r}")
