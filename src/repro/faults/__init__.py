"""Deterministic fault injection and the recovery demo.

* :mod:`repro.faults.plan` — seeded :class:`FaultPlan` firing at named
  sites compiled into the pipeline (worker pool, cache, trace files,
  the simulator);
* :mod:`repro.faults.demo` — the end-to-end recovery demo behind
  ``repro faults demo``.
"""

from repro.faults.plan import (
    SITES,
    FaultPlan,
    FaultRule,
    active,
    configure,
    corrupt_file,
    enabled,
    fire,
    fires,
    parse_rule,
    use_plan,
)

__all__ = [
    "SITES",
    "FaultPlan",
    "FaultRule",
    "active",
    "configure",
    "corrupt_file",
    "enabled",
    "fire",
    "fires",
    "parse_rule",
    "use_plan",
]
