"""Affinity-sharded single-trace fan-out: one scan, many workers.

:func:`scan_segments_sharded` is the parallel twin of
:func:`repro.analysis.engine.scan_segments` for one *giant* segmented
trace: the trace's threads are partitioned round-robin into one shard
per worker, each worker streams the whole segment file but walks only
its own threads' chunks (with :func:`repro.analysis.engine.walk_chunk`
and the exact per-thread carry state the serial scan and the
checkpoint/resume machinery use), and the parent merges the per-shard
``TraceScan`` states and finalizes once.

Why the merge is exact:

* a thread's walk — its sections, masks, anchors, body spans and error
  checks — depends only on that thread's own chunks, which live wholly
  inside one shard; concatenated shard sections hit the same global
  ``(t_start, uid)`` sort in ``_finalize_scan`` the serial walk uses,
* the only cross-thread coupling is shared-address discovery, and
  "shared" just means "touched by two or more distinct threads": a
  shard resolves sharedness among its own threads, and the parent's
  first-toucher merge resolves it across shards (threads are
  partitioned, so the same address surfacing in two shards *is* a
  two-thread address),
* intern tables are deterministic over the file bytes (declared-thread
  order, then per-segment deltas in file order), so every shard decodes
  ids identically and any shard's tables can serve the merged scan.

Workers are pinned one-per-CPU (compact placement, silent fallback —
see :mod:`repro.runner.affinity`) via the supervised pool, so the fan
-out inherits supervision, retries and the ``jobs N == jobs 1``
determinism contract.  Checkpointing stays a serial-scan feature: a
sharded run is the fast path, a resumable run is the crash-safe path.

On a malformed trace every affected shard raises the same
:class:`TraceError` text the serial walk would; when several threads
are malformed the shard with the lowest index wins, which may name a
different (equally real) violation than the serial scan's first-in-
scan-order one.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro import telemetry
from repro.analysis.engine import (
    TraceScan,
    _finalize_scan,
    _ThreadScanState,
    walk_chunk,
)
from repro.errors import TaskError, TraceError
from repro.runner.pool import ExecPolicy, parallel_map
from repro.trace.segments import open_segmented

__all__ = ["scan_segments_sharded", "shard_threads"]


def shard_threads(threads: List[str], jobs: int) -> List[Tuple[str, ...]]:
    """Round-robin partition of ``threads`` into at most ``jobs`` shards."""
    jobs = max(1, min(jobs, len(threads)))
    shards = [tuple(threads[w::jobs]) for w in range(jobs)]
    return [shard for shard in shards if shard]


def _scan_shard(task) -> dict:
    """Worker body: walk one shard's threads over the whole segment file."""
    path, tids = task
    wanted = frozenset(tids)
    with open_segmented(path) as reader:
        tables = reader.tables
        lock_name = tables.locks.name
        scan = TraceScan(tables=tables)
        first_toucher: Dict[int, int] = {}
        states = {tid: _ThreadScanState() for tid in tids}
        for segment in reader.segments():
            for chunk in segment.chunks:
                if chunk.tid not in wanted:
                    continue
                scan.events += len(chunk.column.kind)
                walk_chunk(chunk.tid, chunk.column, chunk.start, states[chunk.tid],
                           scan, first_toucher, lock_name)
        for tid in tids:
            if states[tid].open_by_lock:
                raise TraceError(f"{tid}: unclosed critical sections")
    return {
        "tables": tables,
        "sections": scan.sections,
        "shared_ids": scan.shared_ids,
        "first_toucher": first_toucher,
        "events": scan.events,
        "body_spans": scan.body_spans,
    }


def _unwrap(exc: TaskError) -> Exception:
    """Surface a worker's TraceError as itself, not as a pool failure."""
    text = str(exc)
    marker = "TraceError: "
    if marker in text:
        return TraceError(text.split(marker, 1)[1])
    return exc


def scan_segments_sharded(path, *, jobs: int,
                          policy: Optional[ExecPolicy] = None) -> TraceScan:
    """Scan one segmented trace with ``jobs`` affinity-pinned workers.

    Produces a :class:`TraceScan` observably identical to
    ``scan_segments(open_segmented(path))`` — same sections in the same
    order, same masks, spans, sharedness and event count.
    """
    with telemetry.span("analyze.scan_sharded"):
        with open_segmented(path) as reader:
            threads = list(reader.threads)
        shards = shard_threads(threads, jobs)
        if policy is None:
            policy = ExecPolicy(pin_workers=True)
        tasks = [(str(path), shard) for shard in shards]
        try:
            results = parallel_map(_scan_shard, tasks,
                                   jobs=len(shards), policy=policy)
        except TaskError as exc:
            raise _unwrap(exc) from None

        merged = TraceScan(tables=results[0]["tables"])
        first_toucher: Dict[int, int] = {}
        for res in results:
            merged.sections.extend(res["sections"])
            merged.events += res["events"]
            merged.body_spans.update(res["body_spans"])
            merged.shared_ids.update(res["shared_ids"])
            for aid, tid_id in res["first_toucher"].items():
                if first_toucher.setdefault(aid, tid_id) != tid_id:
                    merged.shared_ids.add(aid)
        _finalize_scan(merged)
    telemetry.count("analyze.scans")
    telemetry.count("analyze.events_scanned", merged.events)
    telemetry.count("analyze.sections", len(merged.sections))
    return merged
