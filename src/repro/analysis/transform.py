"""The end-to-end ULCP trace transformation (Figure 6 of the paper).

Pipeline::

    ULCP trace --(traditional lock semantics)--> sections + shared sets
               --(Algorithm 1 + reversed replay)--> classified pairs
               --(RULE 1/2)--> ULCP-free topology
               --(RULE 3/4)--> resynchronization plan
               --(rewrite)--> ULCP-free trace

The rewritten trace replaces every surviving critical section's original
lock/unlock events with ``CS_ENTER``/``CS_EXIT`` markers (uid-stable with
the original acquire/release events) and drops the lock events of removed
sections entirely.  The replayer materializes the markers according to
the chosen synchronization mode (DLS END-flags or full locksets).
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional, Set

from repro import kernels, telemetry
from repro.analysis.pairs import PairAnalysis, analyze_pairs
from repro.analysis.resync import ResyncPlan, build_resync_plan
from repro.analysis.sections import CriticalSection
from repro.analysis.topology import ORDER, Topology, build_topology
from repro.trace.events import ACQUIRE, CS_ENTER, CS_EXIT, RELEASE, TraceEvent
from repro.trace.trace import Trace, TraceMeta
from repro.trace.validate import validate


@dataclass
class TransformResult:
    """Everything produced by one transformation run."""

    original: Trace
    trace: Trace
    analysis: PairAnalysis
    topology: Topology
    plan: ResyncPlan

    @property
    def sections(self) -> List[CriticalSection]:
        return self.analysis.sections

    def section(self, cs_uid: str) -> CriticalSection:
        return self.topology.nodes[cs_uid]

    @property
    def removed_sections(self) -> int:
        return len(self.plan.removed)


def transform(
    trace: Trace,
    *,
    benign_detection: bool = True,
    order_edges: bool = True,
    validate_output: bool = True,
    fix_categories: Optional[Set[str]] = None,
    analysis: Optional[PairAnalysis] = None,
) -> TransformResult:
    """Transform a recorded trace into its ULCP-free counterpart.

    ``order_edges=False`` disables RULE 2 (the stability ablation);
    ``benign_detection=False`` treats every conflicting pair as a TLCP.

    ``fix_categories`` restricts the transformation to a subset of ULCP
    categories (e.g. ``{"read_read"}``): pairs of every *other* category
    keep their original serialization (an order edge is re-inserted), so
    the replayed gain isolates what fixing just those categories buys —
    the per-strategy estimates of :mod:`repro.perfdebug.advisor`.

    A caller that already ran :func:`analyze_pairs` (with the same
    ``benign_detection``) can pass its ``analysis`` to skip re-analyzing;
    the topology stage then also reuses its write timeline and cached
    benign verdicts instead of re-replaying every FALSE pair.
    """
    with telemetry.span("transform"):
        if analysis is None:
            analysis = analyze_pairs(trace, benign_detection=benign_detection)
        topology = build_topology(
            trace,
            analysis.sections,
            benign_detection=benign_detection,
            order_edges=order_edges,
            timeline=analysis.timeline,
            benign_cache=analysis.benign_cache,
        )
        if fix_categories is not None:
            _reserialize_unselected(topology, analysis, fix_categories)
        plan = build_resync_plan(topology)
        new_trace = _rewrite(trace, analysis.sections, plan)
        if validate_output:
            validate(new_trace)
    telemetry.count("transform.runs")
    telemetry.count("transform.removed_sections", len(plan.removed))
    telemetry.count("transform.aux_locks", len(plan.aux_locks))
    telemetry.count("transform.causal_edges", len(topology.causal_edges()))
    telemetry.count("transform.order_edges", len(topology.order_edges()))
    return TransformResult(
        original=trace,
        trace=new_trace,
        analysis=analysis,
        topology=topology,
        plan=plan,
    )


def _reserialize_unselected(
    topology: Topology, analysis: PairAnalysis, fix_categories: Set[str]
) -> None:
    """Re-insert order edges for ULCP pairs outside ``fix_categories``.

    Those pairs keep exactly the serialization the original lock imposed
    (adjacent re-serialization chains transitively, like the lock did).
    """
    for pair in analysis.ulcps:
        if pair.kind in fix_categories:
            continue
        if pair.c2.uid not in topology.succs(pair.c1.uid):
            topology.add_edge(pair.c1.uid, pair.c2.uid, ORDER)


def _rewrite(
    trace: Trace, sections: List[CriticalSection], plan: ResyncPlan
) -> Trace:
    """Produce the marker-based ULCP-free trace.

    Backend-dispatched: under the numpy backend the rewrite runs on the
    interned columns (:mod:`repro.kernels.rewrite_np`) and returns a
    :class:`~repro.trace.interning.ColumnarTrace` — read-compatible with
    :class:`Trace` and serializing to identical bytes.
    """
    start = perf_counter()
    if kernels.use_numpy() and hasattr(trace, "columnar"):
        from repro.kernels import rewrite_np

        result = rewrite_np.rewrite(trace.columnar(), sections, plan)
        kernels.record("rewrite", perf_counter() - start)
        return result
    result = _rewrite_py(trace, sections, plan)
    kernels.record("rewrite", perf_counter() - start)
    return result


def _rewrite_py(
    trace: Trace, sections: List[CriticalSection], plan: ResyncPlan
) -> Trace:
    release_to_cs: Dict[str, CriticalSection] = {
        cs.release.uid: cs for cs in sections
    }
    acquire_to_cs: Dict[str, CriticalSection] = {cs.uid: cs for cs in sections}

    meta = trace.meta
    new_trace = Trace(
        TraceMeta(
            name=f"{meta.name}+ulcpfree" if meta.name else "ulcpfree",
            seed=meta.seed,
            num_cores=meta.num_cores,
            lock_cost=meta.lock_cost,
            mem_cost=meta.mem_cost,
            params={**meta.params, "transformed": True},
        )
    )
    new_trace.side = trace.side  # selective-recording deltas carry over
    for tid, events in trace.threads.items():
        new_trace.add_thread(tid)
        out = new_trace.threads[tid]
        for event in events:
            if event.kind == ACQUIRE:
                cs = acquire_to_cs[event.uid]
                if cs.uid in plan.removed:
                    continue
                out.append(
                    TraceEvent(
                        uid=event.uid,
                        tid=tid,
                        kind=CS_ENTER,
                        t=event.t,
                        lock=event.lock,
                        token=cs.uid,
                        site=event.site,
                        spin=event.spin,
                    )
                )
            elif event.kind == RELEASE:
                cs = release_to_cs.get(event.uid)
                if cs is None or cs.uid in plan.removed:
                    continue
                out.append(
                    TraceEvent(
                        uid=event.uid,
                        tid=tid,
                        kind=CS_EXIT,
                        t=event.t,
                        lock=event.lock,
                        token=cs.uid,
                        site=event.site,
                    )
                )
            else:
                out.append(event)
    return new_trace
