"""Critical-section extraction from a recorded trace.

A critical section (CS) is the span of one thread's events between a lock
acquisition and its matching release.  Nested locks produce nested
sections; a CS's *body* contains every event strictly between its acquire
and release (including nested lock events).

A CS's uid is the uid of its acquire event; the transformation and the
performance metrics reference sections by this uid throughout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.errors import TraceError
from repro.trace.codesite import CodeRegion, CodeSite
from repro.trace.events import ACQUIRE, READ, RELEASE, TraceEvent, WRITE
from repro.trace.trace import Trace


@dataclass
class CriticalSection:
    """One dynamic critical section."""

    uid: str
    tid: str
    lock: str
    acquire: TraceEvent
    release: TraceEvent
    body: List[TraceEvent] = field(default_factory=list)

    #: All / shared reads and writes in the body (addresses).  The shared
    #: sets (the paper's C.Srd / C.Swr) are filled in by the shadow pass.
    reads: Set[str] = field(default_factory=set)
    writes: Set[str] = field(default_factory=set)
    srd: Set[str] = field(default_factory=set)
    swr: Set[str] = field(default_factory=set)

    #: Anchors for the Eq. 1 performance labels: the uid of the last event
    #: before the CS in this thread (Time1 anchor) and of the first event
    #: after it (Time2/Time3 anchor).  Either may be None at thread edges.
    pre_anchor: Optional[str] = None
    post_anchor: Optional[str] = None

    #: Position of this CS in its lock's acquisition order.
    lock_index: int = -1

    @property
    def t_start(self) -> int:
        return self.acquire.t

    @property
    def t_end(self) -> int:
        return self.release.t

    @property
    def duration(self) -> int:
        return self.t_end - self.t_start

    @property
    def region(self) -> CodeRegion:
        """The code region between the lock and unlock sites."""
        acquire_site = self.acquire.site or CodeSite("<unknown>", 0)
        release_site = self.release.site or acquire_site
        return CodeRegion.from_sites(acquire_site, release_site)

    @property
    def is_empty(self) -> bool:
        """No shared accesses at all (the null-lock shape)."""
        return not self.srd and not self.swr

    def conflicts_with(self, other: "CriticalSection") -> bool:
        """True when the shared access sets truly collide (Algorithm 1 l.5)."""
        return bool(
            (self.srd & other.swr)
            or (self.swr & other.srd)
            or (self.swr & other.swr)
        )

    def __repr__(self):
        return (
            f"<CS {self.uid} {self.tid} lock={self.lock} "
            f"[{self.t_start},{self.t_end}]>"
        )


def extract_sections(trace: Trace) -> List[CriticalSection]:
    """Extract every critical section, in global acquisition-time order."""
    sections: List[CriticalSection] = []
    for tid, events in trace.threads.items():
        open_by_lock: Dict[str, CriticalSection] = {}
        # sections currently open, for body attribution (innermost last)
        stack: List[CriticalSection] = []
        for event in events:
            if event.kind == ACQUIRE:
                if event.lock in open_by_lock:
                    raise TraceError(
                        f"{tid}: nested acquire of same lock {event.lock}"
                    )
                for open_cs in stack:
                    open_cs.body.append(event)
                cs = CriticalSection(
                    uid=event.uid,
                    tid=tid,
                    lock=event.lock,
                    acquire=event,
                    release=event,  # patched at RELEASE
                )
                open_by_lock[event.lock] = cs
                stack.append(cs)
                sections.append(cs)
            elif event.kind == RELEASE:
                cs = open_by_lock.pop(event.lock, None)
                if cs is None:
                    raise TraceError(f"{tid}: release of unheld {event.lock}")
                cs.release = event
                stack.remove(cs)
                for open_cs in stack:
                    open_cs.body.append(event)
            else:
                for open_cs in stack:
                    open_cs.body.append(event)
                    if event.kind == READ:
                        open_cs.reads.add(event.addr)
                    elif event.kind == WRITE:
                        open_cs.writes.add(event.addr)
        if open_by_lock:
            raise TraceError(f"{tid}: unclosed critical sections")

    _attach_anchors(trace, sections)
    sections.sort(key=lambda cs: (cs.t_start, cs.uid))
    by_lock: Dict[str, int] = {}
    for cs in sections:
        cs.lock_index = by_lock.get(cs.lock, 0)
        by_lock[cs.lock] = cs.lock_index + 1
    return sections


def _attach_anchors(trace: Trace, sections: List[CriticalSection]) -> None:
    """Set each CS's pre/post anchor uids (for the Eq. 1 time labels)."""
    index_maps = {
        tid: {e.uid: i for i, e in enumerate(events)}
        for tid, events in trace.threads.items()
    }
    for cs in sections:
        events = trace.threads[cs.tid]
        indices = index_maps[cs.tid]
        acquire_idx = indices[cs.acquire.uid]
        release_idx = indices[cs.release.uid]
        if acquire_idx > 0:
            cs.pre_anchor = events[acquire_idx - 1].uid
        if release_idx + 1 < len(events):
            cs.post_anchor = events[release_idx + 1].uid


def sections_by_lock(sections: List[CriticalSection]) -> Dict[str, List[CriticalSection]]:
    """Group sections per lock, each group in acquisition order."""
    grouped: Dict[str, List[CriticalSection]] = {}
    for cs in sections:
        grouped.setdefault(cs.lock, []).append(cs)
    for group in grouped.values():
        group.sort(key=lambda cs: cs.lock_index)
    return grouped
