"""Critical-section extraction from a recorded trace.

A critical section (CS) is the span of one thread's events between a lock
acquisition and its matching release.  Nested locks produce nested
sections; a CS's *body* contains every event strictly between its acquire
and release (including nested lock events).

A CS's uid is the uid of its acquire event; the transformation and the
performance metrics reference sections by this uid throughout.

Two construction paths exist:

* :func:`extract_sections` — the retained reference walk over
  ``TraceEvent`` lists, filling eager ``reads``/``writes`` string sets
  (the shared sets then come from
  :func:`repro.analysis.shadow.annotate_shared_sets`), and
* :func:`repro.analysis.engine.scan_trace` — the single-pass columnar
  engine, which fills the *bitmask* representation (``read_mask`` /
  ``srd_mask`` / ... over interned address ids) and leaves the string
  sets to be decoded lazily on first access.

Both paths produce :class:`CriticalSection` objects with identical
observable state; Algorithm 1 (:mod:`repro.analysis.classify`) prefers
the masks when present.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set

from repro.errors import TraceError
from repro.trace.codesite import CodeRegion, CodeSite
from repro.trace.events import ACQUIRE, READ, RELEASE, TraceEvent, WRITE
from repro.trace.trace import Trace


def iter_mask_bits(mask: int) -> Iterator[int]:
    """Yield the set bit positions of ``mask`` in ascending order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class CriticalSection:
    """One dynamic critical section.

    Access sets live in two equivalent representations: plain string
    sets (``reads``/``writes``/``srd``/``swr``, the public API) and —
    when built by the columnar engine — integer bitmasks over interned
    address ids (``read_mask``/``write_mask``/``srd_mask``/``swr_mask``).
    The string views decode lazily from the masks, so a section that is
    only ever intersected never materializes a set.
    """

    __slots__ = (
        "uid",
        "tid",
        "lock",
        "acquire",
        "release",
        #: Anchors for the Eq. 1 performance labels: the uid of the last
        #: event before the CS in this thread (Time1 anchor) and of the
        #: first event after it (Time2/Time3 anchor).  None at thread edges.
        "pre_anchor",
        "post_anchor",
        #: Position of this CS in its lock's acquisition order.
        "lock_index",
        #: Bitmasks over interned address ids (None outside the engine path).
        "read_mask",
        "write_mask",
        "srd_mask",
        "swr_mask",
        "_tables",
        "_body",
        "_body_source",
        "_reads",
        "_writes",
        "_srd",
        "_swr",
        "_mem_ops",
    )

    def __init__(
        self,
        uid: str,
        tid: str,
        lock: str,
        acquire: TraceEvent,
        release: TraceEvent,
        body: Optional[List[TraceEvent]] = None,
        reads: Optional[Set[str]] = None,
        writes: Optional[Set[str]] = None,
        srd: Optional[Set[str]] = None,
        swr: Optional[Set[str]] = None,
        pre_anchor: Optional[str] = None,
        post_anchor: Optional[str] = None,
        lock_index: int = -1,
    ):
        self.uid = uid
        self.tid = tid
        self.lock = lock
        self.acquire = acquire
        self.release = release
        self.pre_anchor = pre_anchor
        self.post_anchor = post_anchor
        self.lock_index = lock_index
        self.read_mask = None
        self.write_mask = None
        self.srd_mask = None
        self.swr_mask = None
        self._tables = None
        self._body = body if body is not None else []
        self._body_source = None
        self._reads = reads if reads is not None else set()
        self._writes = writes if writes is not None else set()
        self._srd = srd if srd is not None else set()
        self._swr = swr if swr is not None else set()
        self._mem_ops = None

    @classmethod
    def _open(cls, uid, tid, lock, acquire, pre_anchor):
        """Fast constructor for the engine walks.

        The engine opens one section per ACQUIRE — on lock-heavy traces
        this constructor is a measurable slice of the whole scan, so it
        skips ``__init__``'s kwargs and eager-set defaults: masks start
        at ``None`` (the walk assigns them at RELEASE) and the string
        sets start at ``None`` (``_finalize_scan`` re-Nones them anyway
        to decode lazily from the masks).  ``release`` starts as the
        acquire event and is patched at RELEASE, exactly like the
        reference walk does.
        """
        cs = object.__new__(cls)
        cs.uid = uid
        cs.tid = tid
        cs.lock = lock
        cs.acquire = acquire
        cs.release = acquire
        cs.pre_anchor = pre_anchor
        cs.post_anchor = None
        cs.lock_index = -1
        cs.read_mask = None
        cs.write_mask = None
        cs.srd_mask = None
        cs.swr_mask = None
        cs._tables = None
        cs._body = None
        cs._body_source = None
        cs._reads = None
        cs._writes = None
        cs._srd = None
        cs._swr = None
        cs._mem_ops = None
        return cs

    # ------------------------------------------------- lazy body / sets

    @property
    def body(self) -> List[TraceEvent]:
        if self._body is None:
            view, start, end = self._body_source
            self._body = view[start:end]
        return self._body

    @body.setter
    def body(self, events: List[TraceEvent]) -> None:
        self._body = events

    def _decode_mask(self, mask: int) -> Set[str]:
        name = self._tables.addrs.name
        return {name(bit) for bit in iter_mask_bits(mask)}

    @property
    def reads(self) -> Set[str]:
        """Addresses read anywhere in the body."""
        if self._reads is None:
            self._reads = self._decode_mask(self.read_mask)
        return self._reads

    @reads.setter
    def reads(self, value: Set[str]) -> None:
        self._reads = value

    @property
    def writes(self) -> Set[str]:
        """Addresses written anywhere in the body."""
        if self._writes is None:
            self._writes = self._decode_mask(self.write_mask)
        return self._writes

    @writes.setter
    def writes(self, value: Set[str]) -> None:
        self._writes = value

    @property
    def srd(self) -> Set[str]:
        """The paper's C.Srd: *shared* addresses read in the body."""
        if self._srd is None:
            self._srd = self._decode_mask(self.srd_mask)
        return self._srd

    @srd.setter
    def srd(self, value: Set[str]) -> None:
        self._srd = value
        self.srd_mask = None  # sets now authoritative; drop the stale mask

    @property
    def swr(self) -> Set[str]:
        """The paper's C.Swr: *shared* addresses written in the body."""
        if self._swr is None:
            self._swr = self._decode_mask(self.swr_mask)
        return self._swr

    @swr.setter
    def swr(self, value: Set[str]) -> None:
        self._swr = value
        self.swr_mask = None

    # ------------------------------------------------------- key views

    def srd_keys(self):
        """C.Srd as hashable keys (interned bits when available)."""
        if self.srd_mask is not None:
            return iter_mask_bits(self.srd_mask)
        return self._srd

    def swr_keys(self):
        """C.Swr as hashable keys (interned bits when available)."""
        if self.swr_mask is not None:
            return iter_mask_bits(self.swr_mask)
        return self._swr

    def srd_only_keys(self):
        """C.Srd minus C.Swr, as hashable keys."""
        if self.srd_mask is not None and self.swr_mask is not None:
            return iter_mask_bits(self.srd_mask & ~self.swr_mask)
        return self._srd - self._swr

    # ------------------------------------------------------ properties

    @property
    def t_start(self) -> int:
        return self.acquire.t

    @property
    def t_end(self) -> int:
        return self.release.t

    @property
    def duration(self) -> int:
        return self.t_end - self.t_start

    @property
    def region(self) -> CodeRegion:
        """The code region between the lock and unlock sites."""
        acquire_site = self.acquire.site or CodeSite("<unknown>", 0)
        release_site = self.release.site or acquire_site
        return CodeRegion.from_sites(acquire_site, release_site)

    @property
    def is_empty(self) -> bool:
        """No shared accesses at all (the null-lock shape)."""
        if self.srd_mask is not None and self.swr_mask is not None:
            return not self.srd_mask and not self.swr_mask
        return not self._srd and not self._swr

    def conflicts_with(self, other: "CriticalSection") -> bool:
        """True when the shared access sets truly collide (Algorithm 1 l.5)."""
        if (
            self.srd_mask is not None
            and self.swr_mask is not None
            and other.srd_mask is not None
            and other.swr_mask is not None
        ):
            return bool(
                (self.srd_mask & other.swr_mask)
                or (self.swr_mask & other.srd_mask)
                or (self.swr_mask & other.swr_mask)
            )
        return bool(
            (self.srd & other.swr)
            or (self.swr & other.srd)
            or (self.swr & other.swr)
        )

    def memory_ops(self) -> List[TraceEvent]:
        """The body's READ/WRITE events, computed once and cached."""
        if self._mem_ops is None:
            self._mem_ops = [e for e in self.body if e.kind in (READ, WRITE)]
        return self._mem_ops

    def __repr__(self):
        return (
            f"<CS {self.uid} {self.tid} lock={self.lock} "
            f"[{self.t_start},{self.t_end}]>"
        )


def extract_sections(trace: Trace) -> List[CriticalSection]:
    """Extract every critical section, in global acquisition-time order."""
    sections: List[CriticalSection] = []
    for tid, events in trace.threads.items():
        open_by_lock: Dict[str, CriticalSection] = {}
        # sections currently open, for body attribution (innermost last)
        stack: List[CriticalSection] = []
        for event in events:
            if event.kind == ACQUIRE:
                if event.lock in open_by_lock:
                    raise TraceError(
                        f"{tid}: nested acquire of same lock {event.lock}"
                    )
                for open_cs in stack:
                    open_cs.body.append(event)
                cs = CriticalSection(
                    uid=event.uid,
                    tid=tid,
                    lock=event.lock,
                    acquire=event,
                    release=event,  # patched at RELEASE
                )
                open_by_lock[event.lock] = cs
                stack.append(cs)
                sections.append(cs)
            elif event.kind == RELEASE:
                cs = open_by_lock.pop(event.lock, None)
                if cs is None:
                    raise TraceError(f"{tid}: release of unheld {event.lock}")
                cs.release = event
                stack.remove(cs)
                for open_cs in stack:
                    open_cs.body.append(event)
            else:
                for open_cs in stack:
                    open_cs.body.append(event)
                    if event.kind == READ:
                        open_cs.reads.add(event.addr)
                    elif event.kind == WRITE:
                        open_cs.writes.add(event.addr)
        if open_by_lock:
            raise TraceError(f"{tid}: unclosed critical sections")

    _attach_anchors(trace, sections)
    sections.sort(key=lambda cs: (cs.t_start, cs.uid))
    by_lock: Dict[str, int] = {}
    for cs in sections:
        cs.lock_index = by_lock.get(cs.lock, 0)
        by_lock[cs.lock] = cs.lock_index + 1
    return sections


def _attach_anchors(trace: Trace, sections: List[CriticalSection]) -> None:
    """Set each CS's pre/post anchor uids (for the Eq. 1 time labels)."""
    index_maps = {
        tid: {e.uid: i for i, e in enumerate(events)}
        for tid, events in trace.threads.items()
    }
    for cs in sections:
        events = trace.threads[cs.tid]
        indices = index_maps[cs.tid]
        acquire_idx = indices[cs.acquire.uid]
        release_idx = indices[cs.release.uid]
        if acquire_idx > 0:
            cs.pre_anchor = events[acquire_idx - 1].uid
        if release_idx + 1 < len(events):
            cs.post_anchor = events[release_idx + 1].uid


def sections_by_lock(sections: Iterable[CriticalSection]) -> Dict[str, List[CriticalSection]]:
    """Group sections per lock, each group in acquisition order."""
    grouped: Dict[str, List[CriticalSection]] = {}
    for cs in sections:
        grouped.setdefault(cs.lock, []).append(cs)
    for group in grouped.values():
        group.sort(key=lambda cs: cs.lock_index)
    return grouped
