"""Bounded-memory ULCP analysis over segmented trace files.

:func:`analyze_segments` reproduces :func:`repro.analysis.pairs.analyze_pairs`
— same pairs, same classifications, same breakdown — without ever
materializing the trace: the file is streamed segment by segment
(:mod:`repro.trace.segments`), so peak memory is one segment's columnar
chunks plus output-sized state (the section list and the pair verdicts).

Two passes over the file:

1. **Scan + classify.**  :func:`repro.analysis.engine.scan_segments`
   walks the stream once, producing mask-annotated critical sections;
   Algorithm 1 then classifies every candidate pair from the masks
   alone.  Pairs it answers ``FALSE`` for need the reversed-replay
   benign test — which needs data pass 1 deliberately did not keep.
2. **Benign evidence collection.**  A second stream visits only what
   the FALSE pairs need: the body memory operations of their sections
   (located via the scan's ``body_spans``) and the global write history
   of the addresses those bodies touch (known exactly from the pass-1
   masks).  :func:`repro.analysis.benign.is_benign` then runs unchanged
   against a :meth:`WriteTimeline.from_writes` over that subset.

A trace whose FALSE pairs touch every address degrades to holding every
write — but that is the size of the *answer's evidence*, not of the
trace; the usual case keeps pass-2 state tiny.  When Algorithm 1 settles
every pair (or ``benign_detection=False``), the second pass is skipped
entirely.
"""

from __future__ import annotations

from pathlib import Path
from time import perf_counter
from typing import Dict, List, Tuple, Union

from repro import kernels, telemetry
from repro.analysis.benign import WriteTimeline, is_benign
from repro.analysis.classify import FALSE, classify_pair
from repro.analysis.engine import scan_segments
from repro.analysis.pairs import PairAnalysis, iter_candidate_pairs
from repro.analysis.sections import CriticalSection
from repro.analysis.ulcp import BENIGN, TLCP, UlcpPair
from repro.trace.interning import READ_CODE, WRITE_CODE
from repro.trace.segments import open_segmented
from repro.trace.trace import _uid_order


def analyze_segments(
    path: Union[str, Path], *, benign_detection: bool = True, checkpoint=None,
    jobs: int = 1,
) -> PairAnalysis:
    """Scan, enumerate and classify all same-lock pairs of a segmented file.

    Drop-in equivalent of :func:`repro.analysis.pairs.analyze_pairs` for
    a path to a segmented trace; see the module docstring for the
    memory contract.  The returned analysis carries ``events`` (the
    total event count) since no trace object exists to ``len()``.

    ``checkpoint`` (a :class:`repro.runner.checkpoint.Checkpointer`)
    makes the scan pass resumable at segment granularity; it is cleared
    once the analysis completes, so a later identical run starts clean.

    ``jobs > 1`` fans the scan pass out over affinity-pinned worker
    processes (:func:`repro.analysis.sharded.scan_segments_sharded`),
    one thread shard per worker, with results identical to a serial
    scan.  The fan-out is a fast path, not a resumable one, so it is
    mutually exclusive with ``checkpoint``.
    """
    if jobs > 1 and checkpoint is not None:
        raise ValueError("checkpointing requires a serial scan (jobs=1)")
    with telemetry.span("analyze.pairs"):
        if jobs > 1:
            from repro.analysis.sharded import scan_segments_sharded

            scan = scan_segments_sharded(path, jobs=jobs)
        else:
            with open_segmented(path) as reader:
                scan = scan_segments(reader, checkpoint=checkpoint)
            if checkpoint is not None:
                # the scan finished; a leftover checkpoint would only
                # tempt a future run into "resuming" finished work
                checkpoint.clear()
        analysis, benign_tests = assemble_analysis(
            path, scan, benign_detection=benign_detection
        )
    count_analysis(analysis, benign_tests)
    return analysis


def assemble_analysis(
    path: Union[str, Path], scan, *, benign_detection: bool = True,
) -> Tuple[PairAnalysis, int]:
    """Classification + benign pass + assembly over a *finished* scan.

    Everything :func:`analyze_segments` does after
    :func:`~repro.analysis.engine.scan_segments` returns, factored out so
    the incremental watch fold (:mod:`repro.observe`) finishes through
    the exact same code — the byte-identity of watch-vs-batch final
    results is this shared path, not a parallel implementation.  Returns
    ``(analysis, benign_tests_run)``; telemetry counters are the
    caller's job (:func:`count_analysis`).
    """
    sections = scan.sections

    classified: List[Tuple[CriticalSection, CriticalSection, str]] = []
    false_pairs: List[Tuple[CriticalSection, CriticalSection]] = []
    for first, second in iter_candidate_pairs(sections):
        kind = classify_pair(first, second)
        if kind == FALSE:
            false_pairs.append((first, second))
        classified.append((first, second, kind))

    timeline = None
    benign_cache: Dict[Tuple[str, str], bool] = {}
    benign_tests = 0
    if benign_detection and false_pairs:
        timeline = _collect_benign_evidence(path, scan, false_pairs)
        for first, second in false_pairs:
            benign_cache[(first.uid, second.uid)] = is_benign(
                first, second, timeline
            )
            benign_tests += 1
    elif benign_detection:
        # nothing reached the benign test; keep the (empty) timeline
        # shape downstream consumers expect from a benign-enabled run
        timeline = WriteTimeline.from_writes({})

    analysis = PairAnalysis(
        sections=sections,
        timeline=timeline,
        benign_cache=benign_cache,
        events=scan.events,
    )
    for first, second, kind in classified:
        if kind == FALSE:
            if benign_detection:
                kind = (
                    BENIGN if benign_cache[(first.uid, second.uid)] else TLCP
                )
            else:
                kind = TLCP
        analysis.pairs.append(UlcpPair(c1=first, c2=second, kind=kind))
        analysis.breakdown.add(kind)
    return analysis, benign_tests


def count_analysis(analysis: PairAnalysis, benign_tests: int) -> None:
    """The pair-pass telemetry counters, shared by batch and watch."""
    telemetry.count("analyze.pairs", len(analysis.pairs))
    if benign_tests:
        telemetry.count("analyze.benign_tests", benign_tests)
    breakdown = analysis.breakdown
    for kind in ("null_lock", "read_read", "disjoint_write", "benign", "tlcp"):
        n = getattr(breakdown, kind)
        if n:
            telemetry.count(f"ulcp.{kind}", n)


def _collect_benign_evidence(
    path: Union[str, Path],
    scan,
    false_pairs: List[Tuple[CriticalSection, CriticalSection]],
) -> WriteTimeline:
    """Pass 2: re-stream the file for exactly what the benign test needs.

    Fills each involved section's ``_mem_ops`` cache (its body READ/WRITE
    events, in body order) and returns a write timeline restricted to the
    addresses those bodies touch — both located from pass-1 metadata
    (``scan.body_spans`` spans and the access-set masks), so no event
    outside the needed spans/addresses is ever materialized.
    """
    wanted_sections: Dict[str, CriticalSection] = {}
    wanted_mask = 0
    for first, second in false_pairs:
        for cs in (first, second):
            wanted_sections[cs.uid] = cs
            wanted_mask |= cs.read_mask | cs.write_mask

    # per-thread body spans, sorted by start for the monotone chunk sweep
    spans_by_tid: Dict[str, List[Tuple[int, int, str]]] = {}
    for uid, cs in wanted_sections.items():
        tid, start, end = scan.body_spans[uid]
        spans_by_tid.setdefault(tid, []).append((start, end, uid))
        cs._mem_ops = []  # filled below; empty bodies legitimately stay so
    for spans in spans_by_tid.values():
        spans.sort()

    addr_name = scan.tables.addrs.name
    writes: Dict[str, List[Tuple]] = {}
    cursor: Dict[str, int] = {tid: 0 for tid in spans_by_tid}
    active: Dict[str, List[Tuple[int, int, str]]] = {
        tid: [] for tid in spans_by_tid
    }
    vectorized = kernels.use_numpy()
    lut = None
    if vectorized:
        from repro.kernels import benign_np

        lut = benign_np.wanted_lut(wanted_mask, len(scan.tables.addrs))

    t0 = perf_counter()
    with open_segmented(path) as reader:
        for segment in reader.segments():
            for chunk in segment.chunks:
                tid = chunk.tid
                column = chunk.column
                kinds = column.kind
                addr_ids = column.addr_id
                n = len(kinds)
                base = chunk.start
                spans = spans_by_tid.get(tid, ())
                live = active.get(tid)
                if live is not None:
                    # slide this thread's span window over the chunk range
                    pos = cursor[tid]
                    while pos < len(spans) and spans[pos][0] < base + n:
                        live.append(spans[pos])
                        pos += 1
                    cursor[tid] = pos
                    live[:] = [s for s in live if s[1] > base]
                if vectorized:
                    hits = benign_np.evidence_hits(column, lut)
                else:
                    hits = [
                        i for i in range(n)
                        if (kinds[i] == READ_CODE or kinds[i] == WRITE_CODE)
                        and (wanted_mask >> addr_ids[i]) & 1
                    ]
                for i in hits:
                    aid = addr_ids[i]
                    if kinds[i] == WRITE_CODE:
                        writes.setdefault(addr_name(aid), []).append((
                            column.t[i],
                            _uid_order(column.uids[i]),
                            column.value[i],
                        ))
                    if live:
                        g = base + i
                        event = None
                        for start, end, uid in live:
                            if start <= g < end:
                                if event is None:
                                    event = column.event(i)
                                wanted_sections[uid]._mem_ops.append(event)
    kernels.record("benign_evidence", perf_counter() - t0)
    return WriteTimeline.from_writes(writes)
