"""ULCP records and category constants.

A ULCP (Unnecessary Lock Contention Pair) is two critical sections
protected by the same lock whose bodies do not truly conflict.  The four
categories follow §2.1 of the paper; ``TLCP`` marks a true lock
contention pair (a real conflict) for which the causal edge must be kept.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.sections import CriticalSection
from repro.trace.codesite import CodeRegion

NULL_LOCK = "null_lock"
READ_READ = "read_read"
DISJOINT_WRITE = "disjoint_write"
BENIGN = "benign"
TLCP = "tlcp"

ULCP_KINDS = (NULL_LOCK, READ_READ, DISJOINT_WRITE, BENIGN)


@dataclass
class UlcpPair:
    """One classified pair of same-lock critical sections."""

    c1: CriticalSection
    c2: CriticalSection
    kind: str

    @property
    def lock(self) -> str:
        return self.c1.lock

    @property
    def is_ulcp(self) -> bool:
        return self.kind in ULCP_KINDS

    @property
    def contended(self) -> bool:
        """Did the second section actually wait while the first held the lock?"""
        return (
            self.c2.acquire.wait_time > 0
            and self.c2.acquire.t_request < self.c1.t_end
        )

    @property
    def region1(self) -> CodeRegion:
        return self.c1.region

    @property
    def region2(self) -> CodeRegion:
        return self.c2.region

    def key(self) -> tuple:
        return (self.c1.uid, self.c2.uid)

    def __repr__(self):
        return f"<UlcpPair {self.kind} {self.c1.uid}~{self.c2.uid} lock={self.lock}>"


@dataclass
class UlcpBreakdown:
    """Per-category pair counts (one row of the paper's Table 1)."""

    null_lock: int = 0
    read_read: int = 0
    disjoint_write: int = 0
    benign: int = 0
    tlcp: int = 0

    @property
    def total_ulcps(self) -> int:
        return self.null_lock + self.read_read + self.disjoint_write + self.benign

    def add(self, kind: str) -> None:
        if kind == NULL_LOCK:
            self.null_lock += 1
        elif kind == READ_READ:
            self.read_read += 1
        elif kind == DISJOINT_WRITE:
            self.disjoint_write += 1
        elif kind == BENIGN:
            self.benign += 1
        elif kind == TLCP:
            self.tlcp += 1
        else:
            raise ValueError(f"unknown ULCP kind {kind!r}")
