"""Algorithm 1: ULCP identification by read/write-set intersection.

Given two critical sections in sequential (lock acquisition) order, the
classifier returns one of the ULCP categories or ``FALSE`` (a conflicting
pair).  Conflicting pairs are *candidates* for TLCP — the reversed-replay
pass (:mod:`repro.analysis.benign`) then separates benign ULCPs from true
conflicts, exactly as the paper extends Algorithm 1.
"""

from __future__ import annotations

from repro.analysis.sections import CriticalSection
from repro.analysis.ulcp import DISJOINT_WRITE, NULL_LOCK, READ_READ

#: Algorithm 1's FALSE: the sets conflict; needs the benign/TLCP replay test.
FALSE = "false"


def classify_pair(c1: CriticalSection, c2: CriticalSection) -> str:
    """Line-by-line transcription of the paper's Algorithm 1.

    When both sections carry interned access-set bitmasks (the columnar
    engine path), the three set intersections collapse to three ``&`` on
    plain ints; otherwise the original string-set logic runs.
    """
    if (
        c1.srd_mask is not None
        and c1.swr_mask is not None
        and c2.srd_mask is not None
        and c2.swr_mask is not None
    ):
        if not (c1.srd_mask | c1.swr_mask) or not (c2.srd_mask | c2.swr_mask):
            return NULL_LOCK
        if not c1.swr_mask and not c2.swr_mask:
            return READ_READ
        if (
            not (c1.srd_mask & c2.swr_mask)
            and not (c1.swr_mask & c2.srd_mask)
            and not (c1.swr_mask & c2.swr_mask)
        ):
            return DISJOINT_WRITE
        return FALSE
    if (not c1.srd and not c1.swr) or (not c2.srd and not c2.swr):
        return NULL_LOCK
    if not c1.swr and not c2.swr:
        return READ_READ
    if (
        not (c1.srd & c2.swr)
        and not (c1.swr & c2.srd)
        and not (c1.swr & c2.swr)
    ):
        return DISJOINT_WRITE
    return FALSE
