"""Causal-order topology (RULE 1 and RULE 2).

Nodes are critical sections; a *causal edge* connects a section to the
first true-conflicting (TLCP) section of every other thread, found by
sequential searching forward in the lock's acquisition order (RULE 1).
ULCP relations produce no edge — that is precisely how the false
inter-thread dependencies disappear from the graph.

RULE 2 (performance stability) is materialized as *order edges*: the
causal-edge nodes of each lock are chained in their original partial
order, so every replay of the transformed trace serializes them the same
way the original execution did.

The construction is index-accelerated: for each (lock, thread, address)
we keep the sorted lock-order positions of sections reading/writing that
address, so "first conflicting section after position i" is a bisect, not
a scan.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.benign import WriteTimeline, is_benign
from repro.analysis.sections import CriticalSection, sections_by_lock
from repro.trace.trace import Trace

CAUSAL = "causal"
ORDER = "order"


@dataclass
class Topology:
    """The causal-order graph over critical sections."""

    nodes: Dict[str, CriticalSection] = field(default_factory=dict)
    edges: Set[Tuple[str, str, str]] = field(default_factory=set)  # (src, dst, kind)
    _preds: Dict[str, Set[str]] = field(default_factory=dict)
    _succs: Dict[str, Set[str]] = field(default_factory=dict)

    def add_node(self, cs: CriticalSection) -> None:
        self.nodes[cs.uid] = cs
        self._preds.setdefault(cs.uid, set())
        self._succs.setdefault(cs.uid, set())

    def add_edge(self, src: str, dst: str, kind: str = CAUSAL) -> None:
        if src == dst:
            raise ValueError("self edge in topology")
        self.edges.add((src, dst, kind))
        self._preds[dst].add(src)
        self._succs[src].add(dst)

    def preds(self, uid: str) -> Set[str]:
        return self._preds.get(uid, set())

    def succs(self, uid: str) -> Set[str]:
        return self._succs.get(uid, set())

    def outdegree(self, uid: str) -> int:
        return len(self.succs(uid))

    def indegree(self, uid: str) -> int:
        return len(self.preds(uid))

    def is_standalone(self, uid: str) -> bool:
        """No causal or order relation at all (RULE 3 drops its locks)."""
        return not self.preds(uid) and not self.succs(uid)

    def causal_edges(self) -> List[Tuple[str, str]]:
        return [(s, d) for (s, d, k) in self.edges if k == CAUSAL]

    def order_edges(self) -> List[Tuple[str, str]]:
        return [(s, d) for (s, d, k) in self.edges if k == ORDER]

    def toposort(self) -> List[str]:
        """Kahn's algorithm; raises if a cycle sneaked in."""
        indeg = {uid: self.indegree(uid) for uid in self.nodes}
        queue = sorted(uid for uid, d in indeg.items() if d == 0)
        out: List[str] = []
        while queue:
            uid = queue.pop(0)
            out.append(uid)
            for succ in sorted(self.succs(uid)):
                indeg[succ] -= 1
                if indeg[succ] == 0:
                    queue.append(succ)
        if len(out) != len(self.nodes):
            raise ValueError("cycle in causal-order topology")
        return out


class _LockIndex:
    """Per-lock acceleration structure for RULE 1's sequential searching."""

    def __init__(self, sections: List[CriticalSection]):
        self.sections = sections  # in acquisition order
        self.by_thread: Dict[str, List[CriticalSection]] = {}
        # (tid, addr) -> sorted lock_index positions of write / any access
        self.write_pos: Dict[Tuple[str, str], List[int]] = {}
        self.access_pos: Dict[Tuple[str, str], List[int]] = {}
        self.by_index: Dict[int, CriticalSection] = {}
        for cs in sections:
            self.by_thread.setdefault(cs.tid, []).append(cs)
            self.by_index[cs.lock_index] = cs
            # keys are interned address ids on the engine path, strings on
            # the reference path — either way they only meet keys from the
            # same analysis, so the dicts stay internally consistent
            for addr in cs.swr_keys():
                self.write_pos.setdefault((cs.tid, addr), []).append(cs.lock_index)
                self.access_pos.setdefault((cs.tid, addr), []).append(cs.lock_index)
            for addr in cs.srd_only_keys():
                self.access_pos.setdefault((cs.tid, addr), []).append(cs.lock_index)

    def first_conflict_after(
        self, cs: CriticalSection, tid: str, after_index: int
    ) -> Optional[CriticalSection]:
        """First section of ``tid`` past ``after_index`` whose sets collide."""
        best: Optional[int] = None
        for addr in cs.swr_keys():
            for table in (self.access_pos,):
                positions = table.get((tid, addr))
                if positions:
                    i = bisect.bisect_right(positions, after_index)
                    if i < len(positions):
                        pos = positions[i]
                        if best is None or pos < best:
                            best = pos
        for addr in cs.srd_keys():
            positions = self.write_pos.get((tid, addr))
            if positions:
                i = bisect.bisect_right(positions, after_index)
                if i < len(positions):
                    pos = positions[i]
                    if best is None or pos < best:
                        best = pos
        if best is None:
            return None
        return self.by_index[best]


def build_topology(
    trace: Trace,
    sections: List[CriticalSection],
    *,
    benign_detection: bool = True,
    order_edges: bool = True,
    timeline: Optional[WriteTimeline] = None,
    benign_cache: Optional[Dict[Tuple[str, str], bool]] = None,
) -> Topology:
    """Apply RULE 1 (+ RULE 2 when ``order_edges``) to annotated sections.

    ``sections`` must already carry their shared sets (either the
    engine's bitmasks or :func:`repro.analysis.shadow.annotate_shared_sets`
    string sets).  ``timeline`` / ``benign_cache`` let a caller share the
    pair analysis's write timeline and already-computed benign verdicts —
    every pair the classifier judged FALSE skips its reversed replay here.
    """
    topology = Topology()
    for cs in sections:
        topology.add_node(cs)

    if timeline is None and benign_detection:
        timeline = WriteTimeline(trace)
    if benign_cache is None:
        benign_cache = {}

    def tlcp(first: CriticalSection, second: CriticalSection) -> bool:
        """A true conflict that the reversed replay cannot excuse as benign."""
        if not benign_detection:
            return True
        key = (first.uid, second.uid)
        if key not in benign_cache:
            benign_cache[key] = is_benign(first, second, timeline)
        return not benign_cache[key]

    for lock_sections in sections_by_lock(sections).values():
        index = _LockIndex(lock_sections)
        threads = list(index.by_thread)
        for cs in lock_sections:
            for tid in threads:
                if tid == cs.tid:
                    continue
                cursor = cs.lock_index
                while True:
                    candidate = index.first_conflict_after(cs, tid, cursor)
                    if candidate is None:
                        break
                    if tlcp(cs, candidate):
                        topology.add_edge(cs.uid, candidate.uid, CAUSAL)
                        break
                    cursor = candidate.lock_index  # benign: keep searching

        if order_edges:
            causal_nodes = [
                cs
                for cs in lock_sections
                if topology.preds(cs.uid) or topology.succs(cs.uid)
            ]
            for first, second in zip(causal_nodes, causal_nodes[1:]):
                if first.tid == second.tid:
                    continue  # program order already covers it
                if second.uid not in topology.succs(first.uid):
                    topology.add_edge(first.uid, second.uid, ORDER)

    return topology
