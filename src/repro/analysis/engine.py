"""Single-pass columnar analysis engine.

The reference pipeline walks the trace three-plus times (section
extraction, shared-address discovery, write-timeline construction) over
``TraceEvent`` objects.  This engine fuses all of it into **one**
streaming walk over the interned columnar core
(:mod:`repro.trace.interning`):

* critical sections are opened/closed exactly like
  :func:`repro.analysis.sections.extract_sections`, but their access
  sets accumulate as integer bitmasks over interned address ids,
* address sharedness (touched by two or more threads) is discovered in
  the same walk via a first-toucher map, and
* Eq. 1 anchors fall out of the walk indices for free.

Afterwards the paper's shared sets are one mask-and each
(``srd_mask = read_mask & shared_mask``), and Algorithm 1's three
intersections become three ``&`` on Python ints
(:func:`repro.analysis.classify.classify_pair`).

The write timeline the benign test needs is *not* built here — see
:class:`repro.analysis.benign.WriteTimeline`, which collects and sorts
per-address write history only on first use.

Equivalence bar: for any trace, the sections produced here are
observably identical (uids, anchors, lock indexes, bodies, access sets)
to the reference path's; ``tests/analysis/test_engine_equivalence.py``
holds both paths to it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Set, Tuple

from repro import kernels, telemetry
from repro.analysis.sections import CriticalSection
from repro.errors import TraceError
from repro.trace.interning import (
    ACQUIRE_CODE,
    READ_CODE,
    RELEASE_CODE,
    WRITE_CODE,
    ColumnarTrace,
    InternTables,
)


@dataclass
class TraceScan:
    """Everything one engine walk learned about a trace."""

    tables: InternTables
    sections: List[CriticalSection] = field(default_factory=list)
    #: interned ids of addresses touched by two or more threads
    shared_ids: Set[int] = field(default_factory=set)
    #: bitmask with one bit per shared address id
    shared_mask: int = 0
    #: total events walked
    events: int = 0
    #: streaming path only: CS uid -> (tid, start, end) — the body as a
    #: thread-global event-index span, since the sections of a segment
    #: stream carry no whole-thread view to slice lazily
    body_spans: Dict[str, Tuple[str, int, int]] = field(default_factory=dict)

    def shared_addresses(self) -> Set[str]:
        """The shared addresses as strings (decoded on demand)."""
        name = self.tables.addrs.name
        return {name(aid) for aid in self.shared_ids}


def scan_trace(core: ColumnarTrace) -> TraceScan:
    """One streaming walk: sections + sharedness + masks.

    Raises the same :class:`TraceError` shapes as the reference
    extractor (nested same-lock acquire, release of unheld lock,
    unclosed sections at thread end).

    The result is memoized on ``core``: a columnar core is an immutable
    snapshot of its trace, so its scan — and the sections in it, which
    every downstream stage treats read-only — never changes.
    """
    if core._scan is not None:
        return core._scan
    with telemetry.span("analyze.scan_trace"):
        scan = _scan_trace(core)
    telemetry.count("analyze.scans")
    telemetry.count("analyze.events_scanned", scan.events)
    telemetry.count("analyze.sections", len(scan.sections))
    core._scan = scan
    return scan


def _scan_trace(core: ColumnarTrace) -> TraceScan:
    scan = TraceScan(tables=core.tables)
    first_toucher: Dict[int, int] = {}
    start = perf_counter()
    if kernels.use_numpy():
        from repro.kernels import scan_np

        scan_np.scan_core(core, scan, first_toucher)
    else:
        _scan_core_py(core, scan, first_toucher)
    kernels.record("scan", perf_counter() - start)
    _finalize_scan(scan)
    return scan


def _scan_core_py(core: ColumnarTrace, scan: TraceScan,
                  first_toucher: Dict[int, int]) -> None:
    tables = core.tables
    lock_name = tables.locks.name
    sections = scan.sections
    shared_ids = scan.shared_ids

    for tid, column in core.columns.items():
        kinds = column.kind
        lock_ids = column.lock_id
        addr_ids = column.addr_id
        uids = column.uids
        view = core.threads[tid]
        tid_id = column.tid_id
        n = len(kinds)
        open_by_lock: Dict[int, CriticalSection] = {}
        stack: List[CriticalSection] = []
        # parallel per-open-section mask accumulators (stack-aligned)
        read_masks: List[int] = []
        write_masks: List[int] = []
        scan.events += n

        for i, kind in enumerate(kinds):
            if kind == READ_CODE or kind == WRITE_CODE:
                aid = addr_ids[i]
                if first_toucher.setdefault(aid, tid_id) != tid_id:
                    shared_ids.add(aid)
                if stack:
                    bit = 1 << aid
                    masks = read_masks if kind == READ_CODE else write_masks
                    for depth in range(len(masks)):
                        masks[depth] |= bit
            elif kind == ACQUIRE_CODE:
                lid = lock_ids[i]
                if lid in open_by_lock:
                    raise TraceError(
                        f"{tid}: nested acquire of same lock {lock_name(lid)}"
                    )
                cs = CriticalSection._open(
                    uids[i], tid, lock_name(lid), view[i],
                    uids[i - 1] if i > 0 else None,
                )
                cs._body_source = (view, i + 1, i + 1)  # end patched at RELEASE
                open_by_lock[lid] = cs
                stack.append(cs)
                read_masks.append(0)
                write_masks.append(0)
                sections.append(cs)
            elif kind == RELEASE_CODE:
                lid = lock_ids[i]
                cs = open_by_lock.pop(lid, None)
                if cs is None:
                    raise TraceError(f"{tid}: release of unheld {lock_name(lid)}")
                depth = stack.index(cs)
                stack.pop(depth)
                cs.read_mask = read_masks.pop(depth)
                cs.write_mask = write_masks.pop(depth)
                cs.release = view[i]
                cs._body_source = (view, cs._body_source[1], i)
                if i + 1 < n:
                    cs.post_anchor = uids[i + 1]
        if open_by_lock:
            raise TraceError(f"{tid}: unclosed critical sections")


def _finalize_scan(scan: TraceScan) -> None:
    """Post-walk bookkeeping shared by the whole-core and segment paths:
    shared mask, lazy shared-set annotation, global sort, lock indexes."""
    tables = scan.tables
    sections = scan.sections
    shared_mask = 0
    for aid in scan.shared_ids:
        shared_mask |= 1 << aid
    scan.shared_mask = shared_mask

    # annotate_shared_sets, as a mask-and; string sets stay lazy
    for cs in sections:
        cs._tables = tables
        cs._reads = None
        cs._writes = None
        cs._srd = None
        cs._swr = None
        cs.srd_mask = cs.read_mask & shared_mask
        cs.swr_mask = cs.write_mask & shared_mask

    sections.sort(key=lambda cs: (cs.t_start, cs.uid))
    by_lock: Dict[str, int] = {}
    for cs in sections:
        cs.lock_index = by_lock.get(cs.lock, 0)
        by_lock[cs.lock] = cs.lock_index + 1


class _ThreadScanState:
    """One thread's in-flight scan state, persisted across segments."""

    __slots__ = ("open_by_lock", "stack", "read_masks", "write_masks",
                 "last_uid", "pending_post")

    def __init__(self):
        self.open_by_lock: Dict[int, CriticalSection] = {}
        self.stack: List[CriticalSection] = []
        self.read_masks: List[int] = []
        self.write_masks: List[int] = []
        #: uid of the thread's previous event (the next acquire's pre anchor)
        self.last_uid: Optional[str] = None
        #: sections released at a chunk's last event, waiting for the
        #: thread's next event (possibly segments away) as post anchor
        self.pending_post: List[CriticalSection] = []


def _restore_scan(reader, checkpoint):
    """Adopt a checkpointed mid-scan state, or ``None`` for a cold start.

    Any unusable checkpoint — missing, torn, taken against different
    trace bytes, or a file that can no longer back the claimed position
    — is cleared and ignored: resuming can only save work, never change
    the result.
    """
    loaded = checkpoint.load()
    if loaded is None:
        return None
    payload, segments_done = loaded
    try:
        reader.resume(payload["reader"])
        return payload["scan"], payload["first_toucher"], payload["states"], \
            segments_done
    except (TraceError, KeyError, TypeError):
        checkpoint.clear()
        return None


def walk_chunk(tid, column, base, st, scan, first_toucher, lock_name) -> None:
    """Advance one thread's scan by one columnar chunk.

    Backend-dispatched: the numpy twin in :mod:`repro.kernels.scan_np`
    and the pure walk below are byte-equivalent.  Shared by the serial
    segment scan and the sharded fan-out workers
    (:mod:`repro.analysis.sharded`).
    """
    start = perf_counter()
    if kernels.use_numpy():
        from repro.kernels import scan_np

        scan_np.walk_chunk(tid, column, base, st, scan, first_toucher,
                           lock_name)
    else:
        _walk_chunk_py(tid, column, base, st, scan, first_toucher, lock_name)
    kernels.record("scan", perf_counter() - start)


def _walk_chunk_py(tid, column, base, st, scan, first_toucher,
                   lock_name) -> None:
    kinds = column.kind
    lock_ids = column.lock_id
    addr_ids = column.addr_id
    uids = column.uids
    tid_id = column.tid_id
    n = len(kinds)
    sections = scan.sections
    body_spans = scan.body_spans
    shared_ids = scan.shared_ids
    open_by_lock = st.open_by_lock
    stack = st.stack
    read_masks = st.read_masks
    write_masks = st.write_masks

    for i in range(n):
        kind = kinds[i]
        if st.pending_post:
            for cs in st.pending_post:
                cs.post_anchor = uids[i]
            st.pending_post.clear()
        if kind == READ_CODE or kind == WRITE_CODE:
            aid = addr_ids[i]
            if first_toucher.setdefault(aid, tid_id) != tid_id:
                shared_ids.add(aid)
            if stack:
                bit = 1 << aid
                masks = (
                    read_masks if kind == READ_CODE else write_masks
                )
                for depth in range(len(masks)):
                    masks[depth] |= bit
        elif kind == ACQUIRE_CODE:
            lid = lock_ids[i]
            if lid in open_by_lock:
                raise TraceError(
                    f"{tid}: nested acquire of same lock "
                    f"{lock_name(lid)}"
                )
            cs = CriticalSection._open(
                uids[i], tid, lock_name(lid), column.event(i), st.last_uid,
            )
            # no whole-thread view exists to slice a body from:
            # accidental .body access should fail loud (source stays
            # None), and pass-2 consumers use body_spans instead
            body_spans[cs.uid] = (tid, base + i + 1, base + i + 1)
            open_by_lock[lid] = cs
            stack.append(cs)
            read_masks.append(0)
            write_masks.append(0)
            sections.append(cs)
        elif kind == RELEASE_CODE:
            lid = lock_ids[i]
            cs = open_by_lock.pop(lid, None)
            if cs is None:
                raise TraceError(
                    f"{tid}: release of unheld {lock_name(lid)}"
                )
            depth = stack.index(cs)
            stack.pop(depth)
            cs.read_mask = read_masks.pop(depth)
            cs.write_mask = write_masks.pop(depth)
            cs.release = column.event(i)
            span = body_spans[cs.uid]
            body_spans[cs.uid] = (tid, span[1], base + i)
            st.pending_post.append(cs)
        st.last_uid = uids[i]


def scan_segments(reader, *, checkpoint=None) -> TraceScan:
    """The engine walk of :func:`scan_trace`, over a segment stream.

    ``reader`` is a fresh :class:`repro.trace.segments.SegmentedReader`;
    its segments are consumed strictly, one at a time, so peak memory is
    one segment's chunks plus the (output-sized) section list.  Produces
    sections observably identical to :func:`scan_trace` on the same
    trace — same uids, anchors, lock indexes and decoded access sets —
    except for bodies: streamed sections carry a ``body_spans`` entry on
    the returned scan instead of a sliceable whole-thread view.

    Per-thread walk state (open sections, mask accumulators, anchor
    bookkeeping) persists across segment boundaries, so a critical
    section may open in one segment and close many segments later.

    With a :class:`repro.runner.checkpoint.Checkpointer` the carried
    state is persisted every N segments (the walk state *is* the
    checkpoint — scan-so-far, per-thread states, suspended reader
    position), and an existing checkpoint for the same trace bytes
    fast-forwards the reader so only the unscanned tail is redone.
    """
    with telemetry.span("analyze.scan_segments"):
        tables = reader.tables
        lock_name = tables.locks.name
        scan = TraceScan(tables=tables)
        first_toucher: Dict[int, int] = {}
        states: Dict[str, _ThreadScanState] = {
            tid: _ThreadScanState() for tid in reader.threads
        }
        start_at = 0
        if checkpoint is not None:
            restored = _restore_scan(reader, checkpoint)
            if restored is not None:
                scan, first_toucher, states, start_at = restored
                # resume() installed the pickled tables on the reader;
                # scan.tables is that same object (pickled together)
                tables = reader.tables
                lock_name = tables.locks.name
                telemetry.count("analyze.segments_resumed", start_at)
        segments_done = start_at

        for segment in reader.segments():
            for chunk in segment.chunks:
                tid = chunk.tid
                scan.events += len(chunk.column.kind)
                walk_chunk(tid, chunk.column, chunk.start, states[tid],
                           scan, first_toucher, lock_name)

            segments_done += 1
            if checkpoint is not None and checkpoint.due(segments_done):
                checkpoint.save({
                    "scan": scan,
                    "first_toucher": first_toucher,
                    "states": states,
                    "reader": reader.suspend(),
                }, segments_done)

        for tid in reader.threads:
            if states[tid].open_by_lock:
                raise TraceError(f"{tid}: unclosed critical sections")

        _finalize_scan(scan)
    telemetry.count("analyze.scans")
    telemetry.count("analyze.events_scanned", scan.events)
    telemetry.count("analyze.sections", len(scan.sections))
    return scan
