"""RULE 3 and RULE 4: lockset re-synchronization of the ULCP-free topology.

RULE 3 — every node with an outdegree gets a fresh auxiliary lock (written
``@L<n>`` as in the paper); every node with an indegree is additionally
synchronized by the auxiliary locks of its source nodes.  A node's lockset
is therefore ``{own aux} ∪ {aux of each predecessor}``.

RULE 4 — two sections are mutually exclusive iff their locksets intersect
(:func:`mutually_exclusive`).

Null-locks and standalone nodes lose their lock/unlock events entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.analysis.topology import Topology


@dataclass
class ResyncPlan:
    """The auxiliary synchronization assignment for a transformed trace."""

    #: cs uid -> its own auxiliary lock (only nodes with outdegree).
    aux_locks: Dict[str, str] = field(default_factory=dict)
    #: cs uid -> predecessor cs uids, ordered by original acquisition time.
    preds: Dict[str, List[str]] = field(default_factory=dict)
    #: cs uid -> full lockset (own aux first, then predecessors' aux locks).
    locksets: Dict[str, List[str]] = field(default_factory=dict)
    #: cs uids whose synchronization is dropped (null-locks / standalone).
    removed: Set[str] = field(default_factory=set)
    #: aux lock -> cs uids in intended acquisition order (owner node first,
    #: then its successors by original time): the ELSC schedule of the
    #: auxiliary locks for lockset-mode replay.
    aux_schedule: Dict[str, List[str]] = field(default_factory=dict)

    def lockset_of(self, cs_uid: str) -> List[str]:
        return list(self.locksets.get(cs_uid, ()))

    def max_lockset_size(self) -> int:
        if not self.locksets:
            return 0
        return max(len(ls) for ls in self.locksets.values())

    def total_lockset_entries(self) -> int:
        return sum(len(ls) for ls in self.locksets.values())


def mutually_exclusive(plan: ResyncPlan, uid_a: str, uid_b: str) -> bool:
    """RULE 4: the pair is mutex iff their locksets intersect."""
    return bool(set(plan.lockset_of(uid_a)) & set(plan.lockset_of(uid_b)))


def build_resync_plan(topology: Topology) -> ResyncPlan:
    """Assign auxiliary locks per RULE 3 over a built topology."""
    plan = ResyncPlan()
    # deterministic aux lock numbering: nodes by original acquisition time
    ordered = sorted(topology.nodes.values(), key=lambda cs: (cs.t_start, cs.uid))
    counter = 0
    for cs in ordered:
        if topology.is_standalone(cs.uid):
            plan.removed.add(cs.uid)
            continue
        if topology.outdegree(cs.uid) > 0:
            plan.aux_locks[cs.uid] = f"@L{counter}"
            counter += 1

    by_time = {cs.uid: (cs.t_start, cs.uid) for cs in ordered}
    for cs in ordered:
        if cs.uid in plan.removed:
            continue
        preds = sorted(topology.preds(cs.uid), key=lambda uid: by_time[uid])
        plan.preds[cs.uid] = preds
        lockset: List[str] = []
        own = plan.aux_locks.get(cs.uid)
        if own is not None:
            lockset.append(own)
        for pred in preds:
            pred_lock = plan.aux_locks.get(pred)
            if pred_lock is not None and pred_lock not in lockset:
                lockset.append(pred_lock)
        plan.locksets[cs.uid] = lockset

    # Aux-lock acquisition schedules: owner first, successors by time.
    owners = {lock: uid for uid, lock in plan.aux_locks.items()}
    for lock, owner_uid in owners.items():
        holders = [owner_uid]
        successors = sorted(
            (uid for uid in topology.succs(owner_uid) if uid not in plan.removed),
            key=lambda uid: by_time[uid],
        )
        holders.extend(successors)
        plan.aux_schedule[lock] = holders
    return plan
