"""Retained reference implementation of the pair analysis.

This is the original multi-pass pipeline — ``extract_sections`` over
``TraceEvent`` lists, a separate ``shared_addresses`` walk,
``annotate_shared_sets`` filling string sets, and set-intersection
Algorithm 1 — kept verbatim as the equivalence oracle for the fused
columnar engine (:func:`repro.analysis.pairs.analyze_pairs`).

``tests/analysis/test_engine_equivalence.py`` drives both paths over
randomized workloads and requires identical pair kinds, breakdowns and
transformed traces.  Nothing in the production pipeline calls this.
"""

from __future__ import annotations

from repro.analysis.benign import WriteTimeline, is_benign
from repro.analysis.classify import FALSE, classify_pair
from repro.analysis.pairs import PairAnalysis
from repro.analysis.sections import extract_sections, sections_by_lock
from repro.analysis.shadow import annotate_shared_sets, shared_addresses
from repro.analysis.ulcp import BENIGN, TLCP, UlcpPair
from repro.trace.trace import Trace


def analyze_pairs_reference(
    trace: Trace, *, benign_detection: bool = True
) -> PairAnalysis:
    """Multi-pass pair analysis: the pre-engine implementation, unchanged."""
    sections = extract_sections(trace)
    shared = shared_addresses(trace)
    annotate_shared_sets(sections, shared)
    timeline = WriteTimeline(trace) if benign_detection else None

    analysis = PairAnalysis(sections=sections, timeline=timeline)
    for lock_sections in sections_by_lock(sections).values():
        for first, second in zip(lock_sections, lock_sections[1:]):
            if first.tid == second.tid:
                continue  # program order already serializes these
            kind = classify_pair(first, second)
            if kind == FALSE:
                if benign_detection and is_benign(first, second, timeline):
                    kind = BENIGN
                else:
                    kind = TLCP
            pair = UlcpPair(c1=first, c2=second, kind=kind)
            analysis.pairs.append(pair)
            analysis.breakdown.add(kind)
    return analysis
