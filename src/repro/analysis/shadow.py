"""Shadow memory: shared-address discovery and per-CS access-set state.

The paper uses shadow memory to maintain, per critical section, the sets
of shared reads (C.Srd) and shared writes (C.Swr).  An address is *shared*
when more than one thread touches it anywhere in the trace; accesses to
thread-private addresses never make a lock necessary and are excluded
from the sets Algorithm 1 intersects.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from repro.analysis.sections import CriticalSection
from repro.trace.events import READ, WRITE
from repro.trace.trace import Trace


def shared_addresses(trace: Trace) -> Set[str]:
    """Addresses accessed by two or more distinct threads."""
    first_toucher: Dict[str, str] = {}
    shared: Set[str] = set()
    for tid, events in trace.threads.items():
        for event in events:
            if event.kind not in (READ, WRITE):
                continue
            owner = first_toucher.setdefault(event.addr, tid)
            if owner != tid:
                shared.add(event.addr)
    return shared


def annotate_shared_sets(
    sections: Iterable[CriticalSection], shared: Set[str]
) -> List[CriticalSection]:
    """Fill each section's C.Srd / C.Swr from its raw access sets."""
    result = []
    for cs in sections:
        cs.srd = cs.reads & shared
        cs.swr = cs.writes & shared
        result.append(cs)
    return result


class ShadowMemory:
    """Incremental shadow state, for streaming/online analyses.

    Tracks which threads have read/written each address so far.  The batch
    helpers above are sufficient for offline trace analysis; this class
    backs the race detector and incremental tooling.
    """

    def __init__(self):
        self._readers: Dict[str, Set[str]] = {}
        self._writers: Dict[str, Set[str]] = {}

    def record_read(self, tid: str, addr: str) -> None:
        self._readers.setdefault(addr, set()).add(tid)

    def record_write(self, tid: str, addr: str) -> None:
        self._writers.setdefault(addr, set()).add(tid)

    def readers(self, addr: str) -> Set[str]:
        return set(self._readers.get(addr, ()))

    def writers(self, addr: str) -> Set[str]:
        return set(self._writers.get(addr, ()))

    def is_shared(self, addr: str) -> bool:
        touchers = self.readers(addr) | self.writers(addr)
        return len(touchers) > 1

    def addresses(self) -> Set[str]:
        return set(self._readers) | set(self._writers)
