"""ULCP analysis core: identification, topology, re-sync, transformation."""

from repro.analysis.benign import WriteTimeline, is_benign
from repro.analysis.classify import FALSE, classify_pair
from repro.analysis.engine import TraceScan, scan_trace
from repro.analysis.dls import (
    FLAG_CHECK_COST,
    LocksetCost,
    effective_lockset,
    end_flag,
    plan_cost,
)
from repro.analysis.pairs import PairAnalysis, analyze_pairs
from repro.analysis.reference import analyze_pairs_reference
from repro.analysis.resync import ResyncPlan, build_resync_plan, mutually_exclusive
from repro.analysis.sections import (
    CriticalSection,
    extract_sections,
    sections_by_lock,
)
from repro.analysis.shadow import (
    ShadowMemory,
    annotate_shared_sets,
    shared_addresses,
)
from repro.analysis.topology import CAUSAL, ORDER, Topology, build_topology
from repro.analysis.transform import TransformResult, transform
from repro.analysis.ulcp import (
    BENIGN,
    DISJOINT_WRITE,
    NULL_LOCK,
    READ_READ,
    TLCP,
    ULCP_KINDS,
    UlcpBreakdown,
    UlcpPair,
)

__all__ = [
    "CriticalSection",
    "extract_sections",
    "sections_by_lock",
    "ShadowMemory",
    "shared_addresses",
    "annotate_shared_sets",
    "classify_pair",
    "FALSE",
    "WriteTimeline",
    "is_benign",
    "PairAnalysis",
    "analyze_pairs",
    "analyze_pairs_reference",
    "TraceScan",
    "scan_trace",
    "Topology",
    "build_topology",
    "CAUSAL",
    "ORDER",
    "ResyncPlan",
    "build_resync_plan",
    "mutually_exclusive",
    "effective_lockset",
    "end_flag",
    "plan_cost",
    "LocksetCost",
    "FLAG_CHECK_COST",
    "TransformResult",
    "transform",
    "UlcpPair",
    "UlcpBreakdown",
    "NULL_LOCK",
    "READ_READ",
    "DISJOINT_WRITE",
    "BENIGN",
    "TLCP",
    "ULCP_KINDS",
]
