"""Benign-vs-TLCP separation via reversed replay.

Algorithm 1 cannot distinguish a benign false conflict (redundant writes,
commutative updates) from a true conflict: both intersect.  The paper
replays the trace with the two critical sections in reversed order and
compares results.  Here the reversed replay is a micro-interpretation of
the two CS bodies' memory operations: because trace writes carry their
micro-op (``store v`` / ``add k``), both orders can be re-executed from
the memory state the pair originally saw, and the outcomes compared —
final memory state *and* the values every read observes.

The initial state is reconstructed from the recorded write timeline, so
each pair is judged against the state it actually executed under.
"""

from __future__ import annotations

import bisect
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from repro import kernels
from repro.analysis.sections import CriticalSection
from repro.sim.requests import decode_op
from repro.trace.events import READ, WRITE, TraceEvent
from repro.trace.trace import _uid_order


class WriteTimeline:
    """Per-address sorted write history, for point-in-time state lookups.

    Construction is lazy end to end: handing a trace over costs nothing,
    the per-address histories are collected on the first ``value_at``
    call (one pass over the trace — via the columnar core's arrays when
    one is attached), and each address's history is sorted only when
    that address is first queried.  An analysis in which no pair ever
    reaches the benign test therefore never pays for the timeline.

    History entries are ``(t, order_key, value)`` with ``order_key`` the
    record-order tie break, so equal-timestamp writes resolve exactly as
    in a full time-ordered walk of the trace.
    """

    def __init__(self, trace):
        self._trace = trace
        # addr -> [(t, order_key, value)]; None until first use
        self._writes: Optional[Dict[str, List[Tuple]]] = None
        self._sorted: set = set()

    @classmethod
    def from_writes(cls, writes: Dict[str, List[Tuple]]) -> "WriteTimeline":
        """A timeline over pre-collected per-address write histories.

        The streaming analysis path gathers ``(t, order_key, value)``
        entries for the addresses it needs during its segment walk and
        hands them over here — no trace object exists to collect from.
        Entries may arrive unsorted; sorting stays per-address lazy.
        """
        timeline = cls.__new__(cls)
        timeline._trace = None
        timeline._writes = writes
        timeline._sorted = set()
        return timeline

    def _collect(self) -> Dict[str, List[Tuple]]:
        if self._writes is not None:
            return self._writes
        writes: Dict[str, List[Tuple]] = {}
        trace = self._trace
        core = getattr(trace, "_columnar", None)
        if core is None and hasattr(trace, "columns"):
            core = trace  # already a ColumnarTrace
        if core is not None:
            start = perf_counter()
            if kernels.use_numpy():
                from repro.kernels import benign_np

                writes = benign_np.collect_writes(core)
            else:
                from repro.trace.interning import WRITE_CODE

                addr_name = core.tables.addrs.name
                for column in core.columns.values():
                    kinds = column.kind
                    addr_ids = column.addr_id
                    ts = column.t
                    values = column.value
                    uids = column.uids
                    for i in range(len(kinds)):
                        if kinds[i] == WRITE_CODE:
                            writes.setdefault(
                                addr_name(addr_ids[i]), []
                            ).append((ts[i], _uid_order(uids[i]), values[i]))
            kernels.record("timeline_collect", perf_counter() - start)
        else:
            for event in trace.iter_events():
                if event.kind == WRITE:
                    writes.setdefault(event.addr, []).append(
                        (event.t, _uid_order(event.uid), event.value)
                    )
        self._writes = writes
        return writes

    def value_at(self, addr: str, t: int) -> int:
        """The value of ``addr`` just *before* simulated time ``t``."""
        history = self._collect().get(addr)
        if not history:
            return 0
        if addr not in self._sorted:
            history.sort()
            self._sorted.add(addr)
        # (t,) sorts before every (t, order, value) entry at time t, so
        # idx-1 is the last write strictly before t
        idx = bisect.bisect_left(history, (t,)) - 1
        if idx < 0:
            return 0
        return history[idx][2]


def _memory_ops(cs: CriticalSection) -> List[TraceEvent]:
    return cs.memory_ops()


def _reads_and_state(ops: List[TraceEvent], state: Dict[str, int]):
    """Run one op sequence over a copy of ``state``; collect read values."""
    state = dict(state)
    values: List[int] = []
    for event in ops:
        if event.kind == READ:
            values.append(state.get(event.addr, 0))
        else:
            state[event.addr] = decode_op(event.op).apply(state.get(event.addr, 0))
    return values, state


def is_benign(
    c1: CriticalSection, c2: CriticalSection, timeline: WriteTimeline
) -> bool:
    """Reversed replay: does swapping the pair leave the outcome unchanged?

    Read values are compared *per section* (each section's reads must see
    the same values in both orders), and the final memory state must match.
    Four single-section interpretations cover both orders: running c2
    from c1's end state *is* the forward replay, and symmetrically for
    the reversed order.
    """
    ops1 = _memory_ops(c1)
    ops2 = _memory_ops(c2)
    touched = {e.addr for e in ops1} | {e.addr for e in ops2}
    start = {addr: timeline.value_at(addr, c1.t_start) for addr in touched}

    c1_first_reads, state_after_c1 = _reads_and_state(ops1, start)
    c2_second_reads, forward_state = _reads_and_state(ops2, state_after_c1)
    c2_first_reads, state_after_c2 = _reads_and_state(ops2, start)
    c1_second_reads, reversed_state = _reads_and_state(ops1, state_after_c2)

    if forward_state != reversed_state:
        return False
    return c1_first_reads == c1_second_reads and c2_first_reads == c2_second_reads
