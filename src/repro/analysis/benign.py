"""Benign-vs-TLCP separation via reversed replay.

Algorithm 1 cannot distinguish a benign false conflict (redundant writes,
commutative updates) from a true conflict: both intersect.  The paper
replays the trace with the two critical sections in reversed order and
compares results.  Here the reversed replay is a micro-interpretation of
the two CS bodies' memory operations: because trace writes carry their
micro-op (``store v`` / ``add k``), both orders can be re-executed from
the memory state the pair originally saw, and the outcomes compared —
final memory state *and* the values every read observes.

The initial state is reconstructed from the recorded write timeline, so
each pair is judged against the state it actually executed under.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Tuple

from repro.analysis.sections import CriticalSection
from repro.sim.requests import decode_op
from repro.trace.events import READ, WRITE, TraceEvent
from repro.trace.trace import Trace


class WriteTimeline:
    """Per-address sorted write history, for point-in-time state lookups."""

    def __init__(self, trace: Trace):
        self._writes: Dict[str, List[Tuple[int, int]]] = {}
        for event in trace.iter_time_order():
            if event.kind == WRITE:
                self._writes.setdefault(event.addr, []).append((event.t, event.value))

    def value_at(self, addr: str, t: int) -> int:
        """The value of ``addr`` just *before* simulated time ``t``."""
        history = self._writes.get(addr)
        if not history:
            return 0
        idx = bisect.bisect_left(history, (t, -(1 << 62))) - 1
        if idx < 0:
            return 0
        return history[idx][1]


def _memory_ops(cs: CriticalSection) -> List[TraceEvent]:
    return [e for e in cs.body if e.kind in (READ, WRITE)]


def _interpret(
    first: List[TraceEvent], second: List[TraceEvent], state: Dict[str, int]
) -> Tuple[Dict[str, int], List[int]]:
    """Run two op sequences back to back over ``state``; collect read values."""
    state = dict(state)
    read_values: List[int] = []
    for event in list(first) + list(second):
        if event.kind == READ:
            read_values.append(state.get(event.addr, 0))
        else:
            op = decode_op(event.op)
            state[event.addr] = op.apply(state.get(event.addr, 0))
    return state, read_values


def is_benign(
    c1: CriticalSection, c2: CriticalSection, timeline: WriteTimeline
) -> bool:
    """Reversed replay: does swapping the pair leave the outcome unchanged?

    Read values are compared *per section* (each section's reads must see
    the same values in both orders), and the final memory state must match.
    """
    ops1 = _memory_ops(c1)
    ops2 = _memory_ops(c2)
    touched = {e.addr for e in ops1} | {e.addr for e in ops2}
    start = {addr: timeline.value_at(addr, c1.t_start) for addr in touched}

    forward_state, _ = _interpret(ops1, ops2, start)
    reversed_state, _ = _interpret(ops2, ops1, start)
    if forward_state != reversed_state:
        return False

    # Per-section read comparison: c1's reads in forward order vs c1's reads
    # when it runs second, and symmetrically for c2.
    def reads_of(ops, state):
        state = dict(state)
        values = []
        for event in ops:
            if event.kind == READ:
                values.append(state.get(event.addr, 0))
            else:
                state[event.addr] = decode_op(event.op).apply(state.get(event.addr, 0))
        return values, state

    c1_first_reads, state_after_c1 = reads_of(ops1, start)
    c2_second_reads, _ = reads_of(ops2, state_after_c1)
    c2_first_reads, state_after_c2 = reads_of(ops2, start)
    c1_second_reads, _ = reads_of(ops1, state_after_c2)
    return c1_first_reads == c1_second_reads and c2_first_reads == c2_second_reads
