"""Dynamic locking strategy (DLS) accounting helpers (paper §3.2, Fig. 9).

At replay time each source node raises an END flag when it finishes; a
target node's *effective* lockset excludes the locks of sources that have
already ENDed.  The runtime behaviour lives in the replayer (it checks the
flags with :class:`repro.sim.requests.CheckFlag`); this module provides
the static cost model used by the Table 3 experiment and by reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Set

from repro.analysis.resync import ResyncPlan

#: Cost of testing one END flag at runtime (vs. a full lock acquisition).
FLAG_CHECK_COST = 5


def end_flag(cs_uid: str) -> str:
    """The END-flag name a finished section raises."""
    return f"END:{cs_uid}"


def effective_lockset(
    plan: ResyncPlan, cs_uid: str, ended: Set[str]
) -> List[str]:
    """The lockset a section must still acquire given finished sources."""
    lockset: List[str] = []
    own = plan.aux_locks.get(cs_uid)
    if own is not None:
        lockset.append(own)
    for pred in plan.preds.get(cs_uid, ()):
        if pred in ended:
            continue
        pred_lock = plan.aux_locks.get(pred)
        if pred_lock is not None and pred_lock not in lockset:
            lockset.append(pred_lock)
    return lockset


@dataclass
class LocksetCost:
    """Static lockset-maintenance cost of a plan, with/without DLS."""

    full_entries: int
    sections: int

    def cost_without_dls(self, lock_cost: int) -> int:
        """Every lockset entry pays a full acquire + release."""
        return 2 * self.full_entries * lock_cost

    def cost_with_dls_bound(self, lock_cost: int, flag_cost: int = FLAG_CHECK_COST) -> int:
        """Upper bound: every entry degenerates to a flag check."""
        return self.full_entries * flag_cost


def plan_cost(plan: ResyncPlan) -> LocksetCost:
    return LocksetCost(
        full_entries=plan.total_lockset_entries(),
        sections=len(plan.locksets),
    )
