"""ULCP pair enumeration and classification over a whole trace.

Pairs are the paper's unit of analysis: for every lock, consecutive
critical sections from *different* threads in the lock's acquisition
order form candidate pairs (three sequential sections encode as two
pairs, as §2.1 prescribes).  Each pair runs through Algorithm 1 and, when
Algorithm 1 answers FALSE, through the reversed-replay benign test.

This module runs the fused columnar path: one :func:`scan_trace` walk
replaces the separate section-extraction / shared-address / shared-set
passes, the write timeline is built lazily (only a FALSE pair triggers
it), and every benign verdict is cached on the returned
:class:`PairAnalysis` so the transformation stage can reuse it instead
of re-replaying.  The original multi-pass implementation is retained as
:func:`repro.analysis.reference.analyze_pairs_reference` and the two are
held to identical output by ``tests/analysis/test_engine_equivalence.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro import telemetry
from repro.analysis.benign import WriteTimeline, is_benign
from repro.analysis.classify import FALSE, classify_pair
from repro.analysis.engine import scan_trace
from repro.analysis.sections import CriticalSection, sections_by_lock
from repro.analysis.ulcp import BENIGN, TLCP, UlcpBreakdown, UlcpPair
from repro.trace.trace import Trace


@dataclass
class PairAnalysis:
    """Everything the pair pass learned about a trace."""

    sections: List[CriticalSection] = field(default_factory=list)
    pairs: List[UlcpPair] = field(default_factory=list)
    breakdown: UlcpBreakdown = field(default_factory=UlcpBreakdown)
    #: lazy write timeline over the analyzed trace (None when the benign
    #: pass was disabled); downstream stages reuse it instead of rebuilding
    timeline: Optional[WriteTimeline] = None
    #: benign verdicts keyed ``(c1.uid, c2.uid)``, for reuse by topology
    benign_cache: Dict[Tuple[str, str], bool] = field(default_factory=dict)
    #: total events in the analyzed trace (both paths fill it; the
    #: streaming path has no Trace object for consumers to ``len()``)
    events: int = 0

    @property
    def ulcps(self) -> List[UlcpPair]:
        return [p for p in self.pairs if p.is_ulcp]

    @property
    def tlcps(self) -> List[UlcpPair]:
        return [p for p in self.pairs if p.kind == TLCP]

    def pairs_by_lock(self) -> Dict[str, List[UlcpPair]]:
        grouped: Dict[str, List[UlcpPair]] = {}
        for pair in self.pairs:
            grouped.setdefault(pair.lock, []).append(pair)
        return grouped


def iter_candidate_pairs(
    sections: List[CriticalSection],
) -> Iterator[Tuple[CriticalSection, CriticalSection]]:
    """§2.1 pair enumeration: per lock, consecutive sections from
    different threads, in acquisition order.  Shared by the whole-trace
    and streaming analysis paths so the pair set (and its order) is one
    definition."""
    for lock_sections in sections_by_lock(sections).values():
        for first, second in zip(lock_sections, lock_sections[1:]):
            if first.tid == second.tid:
                continue  # program order already serializes these
            yield first, second


def analyze_pairs(trace: Trace, *, benign_detection: bool = True) -> PairAnalysis:
    """Scan, enumerate and classify all same-lock pairs in one pass.

    ``benign_detection=False`` skips the reversed replay and counts every
    conflicting pair as a TLCP — the ablation for how much the benign pass
    buys (misclassified benign pairs keep causal edges they don't need).
    """
    with telemetry.span("analyze.pairs"):
        core = trace.columnar()
        scan = scan_trace(core)
        sections = scan.sections
        timeline = WriteTimeline(trace) if benign_detection else None

        analysis = PairAnalysis(
            sections=sections, timeline=timeline, events=len(trace)
        )
        benign_cache = analysis.benign_cache
        benign_tests = 0
        for first, second in iter_candidate_pairs(sections):
            kind = classify_pair(first, second)
            if kind == FALSE:
                if benign_detection:
                    benign = is_benign(first, second, timeline)
                    benign_cache[(first.uid, second.uid)] = benign
                    benign_tests += 1
                    kind = BENIGN if benign else TLCP
                else:
                    kind = TLCP
            pair = UlcpPair(c1=first, c2=second, kind=kind)
            analysis.pairs.append(pair)
            analysis.breakdown.add(kind)
    telemetry.count("analyze.pairs", len(analysis.pairs))
    if benign_tests:
        telemetry.count("analyze.benign_tests", benign_tests)
    breakdown = analysis.breakdown
    for kind in ("null_lock", "read_read", "disjoint_write", "benign", "tlcp"):
        n = getattr(breakdown, kind)
        if n:
            telemetry.count(f"ulcp.{kind}", n)
    return analysis
