"""Trace event model.

The recorder lowers every machine observation into the small vocabulary
below.  High-level synchronization (condvars, semaphores, barriers, flags)
is lowered into ``WAIT``/``POST`` token events whose pairing reproduces the
original wake order during replay; a timed-out wait is lowered into its
observed duration and replayed as a sleep.

Every event has a stable ``uid`` assigned at record time.  Transformation
preserves uids (it only rewrites synchronization), so a timestamp measured
at an event in the original replay can be compared with the timestamp of
the same uid in the ULCP-free replay — this is what makes the paper's
Eq. 1 (ΔTime at labels) computable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.trace.codesite import CodeSite

THREAD_START = "thread_start"
THREAD_END = "thread_end"
COMPUTE = "compute"
ACQUIRE = "acquire"
RELEASE = "release"
READ = "read"
WRITE = "write"
WAIT = "wait"
POST = "post"
SLEEP = "sleep"

# Markers emitted by the ULCP transformation in place of the original
# lock/unlock events of a critical section.  ``token`` carries the cs uid;
# ``lock`` keeps the original lock name for diagnostics.  The replayer
# expands them into auxiliary-lock acquisitions (lockset mode) or
# predecessor END-flag waits (DLS mode).
CS_ENTER = "cs_enter"
CS_EXIT = "cs_exit"

#: Events that constitute synchronization (vs. computation/memory).
SYNC_KINDS = frozenset({ACQUIRE, RELEASE, WAIT, POST})


@dataclass(slots=True)
class TraceEvent:
    """One recorded dynamic event.

    ``t`` is the event's primary timestamp (its completion for waits, its
    grant time for acquires).  Kind-specific payloads live in the optional
    fields; unused fields stay at their defaults.

    ``slots=True`` matters at scale: a trace holds one instance per
    dynamic event, and slotted instances are both smaller (no per-object
    ``__dict__``) and faster to read in the analysis hot loops.
    """

    uid: str
    tid: str
    kind: str
    t: int
    site: Optional[CodeSite] = None

    # compute / sleep / wait
    duration: int = 0

    # acquire / release
    lock: str = ""
    t_request: int = 0
    spin: bool = False
    shared: bool = False  # reader-mode acquisition (rwlock)

    # read / write
    addr: str = ""
    value: int = 0
    op: Optional[Tuple[str, int]] = None  # encoded Store/Add

    # wait / post
    token: Optional[str] = None
    reason: str = ""
    woken: List[str] = field(default_factory=list)

    @property
    def is_sync(self) -> bool:
        return self.kind in SYNC_KINDS

    @property
    def is_memory(self) -> bool:
        return self.kind in (READ, WRITE)

    @property
    def wait_time(self) -> int:
        """For acquires: how long the thread waited for the grant."""
        if self.kind == ACQUIRE:
            return self.t - self.t_request
        return 0

    def encode(self) -> dict:
        """Compact dict for JSONL serialization (defaults omitted)."""
        data = {"uid": self.uid, "tid": self.tid, "kind": self.kind, "t": self.t}
        if self.site is not None:
            data["site"] = self.site.encode()
        if self.duration:
            data["duration"] = self.duration
        if self.lock:
            data["lock"] = self.lock
        if self.t_request:
            data["t_request"] = self.t_request
        if self.spin:
            data["spin"] = True
        if self.shared:
            data["shared"] = True
        if self.addr:
            data["addr"] = self.addr
        if self.value:
            data["value"] = self.value
        if self.op is not None:
            data["op"] = list(self.op)
        if self.token is not None:
            data["token"] = self.token
        if self.reason:
            data["reason"] = self.reason
        if self.woken:
            data["woken"] = self.woken
        return data

    @staticmethod
    def decode(data: dict) -> "TraceEvent":
        op = data.get("op")
        return TraceEvent(
            uid=data["uid"],
            tid=data["tid"],
            kind=data["kind"],
            t=data["t"],
            site=CodeSite.decode(data.get("site")),
            duration=data.get("duration", 0),
            lock=data.get("lock", ""),
            t_request=data.get("t_request", 0),
            spin=data.get("spin", False),
            shared=data.get("shared", False),
            addr=data.get("addr", ""),
            value=data.get("value", 0),
            op=tuple(op) if op is not None else None,
            token=data.get("token"),
            reason=data.get("reason", ""),
            woken=list(data.get("woken", [])),
        )
