"""Selective recording: bypass a code range, record only its state delta.

The paper (§5.1) reduces record/replay cost by recording, for expensive
uninteresting ranges (system calls, library calls, spin loops), only the
memory-state changes and the elapsed time — during replay the range is
skipped and the state restored.

Here a bypassed range appears in the trace as a single ``SLEEP`` event of
the observed duration (the replayer simply waits it out, off-core) plus a
``StateDelta`` carried in the recording's side table, applied to simulated
memory when the sleep completes during replay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.sim.requests import Store


@dataclass
class StateDelta:
    """Memory changes observed across a bypassed range."""

    sleep_uid: str
    duration: int
    changes: Dict[str, int] = field(default_factory=dict)

    def encode(self) -> dict:
        return {
            "sleep_uid": self.sleep_uid,
            "duration": self.duration,
            "changes": dict(self.changes),
        }

    @staticmethod
    def decode(data: dict) -> "StateDelta":
        return StateDelta(
            sleep_uid=data["sleep_uid"],
            duration=data["duration"],
            changes=dict(data["changes"]),
        )

    def apply(self, memory) -> None:
        """Install the recorded post-range state into simulated memory."""
        for addr, value in self.changes.items():
            memory.write(addr, Store(value))


def diff_snapshots(before: Dict[str, int], after: Dict[str, int]) -> Dict[str, int]:
    """Cells that changed (or appeared) between two memory snapshots."""
    changes = {}
    for addr, value in after.items():
        if before.get(addr, 0) != value:
            changes[addr] = value
    for addr in before:
        if addr not in after:
            changes[addr] = 0
    return changes


@dataclass
class SideTable:
    """Per-trace side data: state deltas and checkpoint markers."""

    deltas: List[StateDelta] = field(default_factory=list)

    def delta_for(self, sleep_uid: str):
        for delta in self.deltas:
            if delta.sleep_uid == sleep_uid:
                return delta
        return None

    def encode(self) -> dict:
        return {"deltas": [d.encode() for d in self.deltas]}

    @staticmethod
    def decode(data: dict) -> "SideTable":
        return SideTable(deltas=[StateDelta.decode(d) for d in data.get("deltas", [])])
