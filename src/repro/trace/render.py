"""ASCII timeline rendering of traces — a quick visual debugging aid.

One lane per thread; each column is a time bucket.  Glyphs:

* ``#`` — inside a critical section,
* ``=`` — computing outside any critical section,
* ``~`` — blocked (waiting for a lock / cond / token),
* `` `` — idle / finished.

``render_timeline(trace)`` returns the picture as a string; pass
``width`` to control the resolution.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.trace.events import (
    ACQUIRE,
    COMPUTE,
    CS_ENTER,
    CS_EXIT,
    RELEASE,
    SLEEP,
    THREAD_END,
    THREAD_START,
    WAIT,
)
from repro.trace.trace import Trace

IN_CS = "#"
BUSY = "="
BLOCKED = "~"
IDLE = " "


def _spans(events) -> List[Tuple[int, int, str]]:
    """(start, end, glyph) spans for one thread's events."""
    spans: List[Tuple[int, int, str]] = []
    cs_depth = 0
    for event in events:
        if event.kind in (THREAD_START, THREAD_END):
            continue
        glyph = None
        start = end = None
        if event.kind == COMPUTE:
            start, end = event.t - event.duration, event.t
            glyph = IN_CS if cs_depth > 0 else BUSY
        elif event.kind in (ACQUIRE, CS_ENTER):
            if event.kind == ACQUIRE and event.wait_time > 0:
                spans.append((event.t_request, event.t, BLOCKED))
            cs_depth += 1
        elif event.kind in (RELEASE, CS_EXIT):
            cs_depth = max(0, cs_depth - 1)
        elif event.kind in (WAIT, SLEEP):
            start, end = event.t - event.duration, event.t
            glyph = BLOCKED
        if glyph is not None and start is not None and end > start:
            spans.append((start, end, glyph))
    return spans


def render_timeline(trace: Trace, *, width: int = 72) -> str:
    """Render per-thread activity lanes over simulated time."""
    end_time = max(1, trace.end_time)
    scale = width / end_time
    lanes: Dict[str, List[str]] = {}
    for tid, events in trace.threads.items():
        lane = [IDLE] * width
        for start, end, glyph in _spans(events):
            lo = min(width - 1, int(start * scale))
            hi = min(width, max(lo + 1, int(end * scale)))
            for i in range(lo, hi):
                # critical sections win over compute, blocked over idle
                if lane[i] == IDLE or (lane[i] == BUSY and glyph == IN_CS):
                    lane[i] = glyph
                elif glyph == BLOCKED and lane[i] == IDLE:
                    lane[i] = glyph
        lanes[tid] = lane

    label_width = max(len(tid) for tid in lanes) if lanes else 2
    lines = [
        f"timeline 0..{end_time}ns  (#=in CS  ==compute  ~=blocked)",
    ]
    for tid, lane in lanes.items():
        lines.append(f"{tid:>{label_width}} |{''.join(lane)}|")
    return "\n".join(lines)
