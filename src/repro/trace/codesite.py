"""Code sites and code regions.

A :class:`CodeSite` identifies the static program location that issued a
dynamic event (file, line, function) — the granularity at which PERFPLAY
reports ULCPs back to the programmer.  A :class:`CodeRegion` is a span of
lines in one file; critical sections map to the region between their lock
and unlock sites, and ULCP fusion (Algorithm 2) merges regions with the
``overlaps`` / ``merge`` operators (the paper's ⊓ and ⊔).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True, order=True)
class CodeSite:
    """One static source location."""

    file: str
    line: int
    function: str = ""

    def __str__(self):
        suffix = f":{self.function}" if self.function else ""
        return f"{self.file}:{self.line}{suffix}"

    def encode(self):
        return [self.file, self.line, self.function]

    @staticmethod
    def decode(data) -> Optional["CodeSite"]:
        if data is None:
            return None
        file, line, function = data
        return CodeSite(file, int(line), function)


@dataclass(frozen=True, order=True)
class CodeRegion:
    """A contiguous span of lines in one file."""

    file: str
    start_line: int
    end_line: int

    def __post_init__(self):
        if self.end_line < self.start_line:
            raise ValueError(
                f"region end {self.end_line} before start {self.start_line}"
            )

    @staticmethod
    def from_sites(first: CodeSite, second: CodeSite) -> "CodeRegion":
        """Region spanning two sites (e.g. a lock site and its unlock site)."""
        if first.file != second.file:
            # Lock and unlock in different files: degrade to the lock site.
            return CodeRegion(first.file, first.line, first.line)
        low, high = sorted((first.line, second.line))
        return CodeRegion(first.file, low, high)

    def overlaps(self, other: "CodeRegion") -> bool:
        """The paper's ⊓ test: do two regions share any code?"""
        if self.file != other.file:
            return False
        return self.start_line <= other.end_line and other.start_line <= self.end_line

    def merge(self, other: "CodeRegion") -> "CodeRegion":
        """The paper's ⊔: conflate two overlapping regions."""
        if not self.overlaps(other):
            raise ValueError(f"cannot merge disjoint regions {self} and {other}")
        return CodeRegion(
            self.file,
            min(self.start_line, other.start_line),
            max(self.end_line, other.end_line),
        )

    def __str__(self):
        if self.start_line == self.end_line:
            return f"{self.file}:{self.start_line}"
        return f"{self.file}:{self.start_line}-{self.end_line}"

    def encode(self):
        return [self.file, self.start_line, self.end_line]

    @staticmethod
    def decode(data) -> "CodeRegion":
        file, start, end = data
        return CodeRegion(file, int(start), int(end))
