"""Segmented streaming trace format: bounded-memory record-once/analyze-many.

The monolithic ``.jsonl.gz`` format of :mod:`repro.trace.serialize` keeps
one event per line and must be materialized as a full :class:`Trace` to
be analyzed — fine up to RAM, a wall past it.  This module adds the
**segmented** format (version 1): the same recording split into
fixed-size immutable segments that the analysis engine, the stats
summary and the timeline builder can consume one segment at a time,
never holding more than ``segment_events`` events in memory.

On-disk layout — still one file, still JSONL, still ``zcat``-able::

    header block     {"repro_segments": 1, "segment_events": N}
                     {"meta": ...}
                     {"lock_schedule": ...}
                     {"threads": [...]}
                     {"side": ...}                      (optional)
    segment block*   {"segment": k, "events": n, "symbols": {deltas}}
                     {"chunk": tid, "n": n, "uid": [...], "kind": [...],
                      "t": [...], ...}                  (one per thread)
                     {"segment_end": k, "digest": "sha256..."}
    footer block     {"footer": {"segments": K, "events": N,
                                 "digest": "sha256..."}}

Events are split into segments in **global time order** (exactly the
order :func:`repro.trace.serialize.write_trace` emits), then grouped
per thread inside each segment as columnar chunks — parallel arrays of
interned ids, decoded straight into
:class:`repro.trace.interning.ColumnarThread` objects on read.  Symbol
tables are written as per-segment *deltas* (the strings first interned
in that segment), so the reader's :class:`InternTables` grow
monotonically and chunk ids stay valid across the whole file.

For a ``.gz`` path every block is its own gzip member; concatenated
members are a single valid gzip stream (``zcat`` and ``gzip.open`` read
straight through), while the sidecar index (``<path>.idx``) records each
member's byte offset so segment ``k`` is random-accessible with one
``seek`` + one member decompression.  The index also carries each
segment's content digest — the basis for content-addressed cache keys
(:func:`repro.runner.keys.segmented_digest`) that never decompress the
file.  The index is advisory: the data file alone is fully
self-describing.

Durability: both the data file and the index are written to a temp file
and atomically renamed into place, and every segment is digest-protected
— a torn write, a truncated tail or a flipped bit is detected at the
segment granularity.  Salvage mode (:func:`salvage_segmented`) degrades
to the longest well-formed **segment prefix**, then applies the same
replayability trim as monolithic salvage.
"""

from __future__ import annotations

import gzip
import hashlib
import io
import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from repro import telemetry
from repro.chaos.points import crash_point
from repro.errors import TraceError
from repro.trace.codesite import CodeSite
from repro.trace.events import TraceEvent
from repro.trace.interning import (
    FLAG_SHARED,
    FLAG_SPIN,
    KINDS,
    ColumnarThread,
    ColumnarTrace,
    InternTables,
)
from repro.trace.selective import SideTable
from repro.trace.trace import Trace, TraceMeta

#: first-line marker + schema version of the segmented container
FORMAT_KEY = "repro_segments"
FORMAT_VERSION = 1
#: default events per segment — the memory granule of streaming analysis
DEFAULT_SEGMENT_EVENTS = 65536
#: sidecar index filename suffix (appended to the trace path)
INDEX_SUFFIX = ".idx"

_GZIP_MAGIC = b"\x1f\x8b"


def _is_gz_path(path: Path) -> bool:
    return path.suffix == ".gz"


def is_segmented_file(path: Union[str, Path]) -> bool:
    """Sniff whether ``path`` holds the segmented format (by first line)."""
    path = Path(path)
    try:
        with _open_text(path) as handle:
            first = handle.readline()
        data = json.loads(first)
    except (OSError, EOFError, zlib.error, UnicodeDecodeError,
            json.JSONDecodeError, ValueError):
        return False
    return isinstance(data, dict) and FORMAT_KEY in data


def _open_text(path: Path):
    """Text handle over the container, chosen by content (gzip magic)."""
    with open(path, "rb") as probe:
        magic = probe.read(2)
    if magic == _GZIP_MAGIC:
        return gzip.open(path, "rt", encoding="utf-8")
    return open(path, "r", encoding="utf-8")


# ------------------------------------------------------------------ writer


class _ChunkBuilder:
    """Per-thread columnar accumulation for the segment being built."""

    __slots__ = ("tid", "uid", "kind", "t", "duration", "t_request", "value",
                 "lock", "addr", "flags", "site", "op", "token", "reason",
                 "woken")

    def __init__(self, tid: str):
        self.tid = tid
        self.uid: List[str] = []
        self.kind: List[int] = []
        self.t: List[int] = []
        self.duration: List[int] = []
        self.t_request: List[int] = []
        self.value: List[int] = []
        self.lock: List[int] = []
        self.addr: List[int] = []
        self.flags: List[int] = []
        self.site: List[Optional[list]] = []
        self.op: Dict[int, list] = {}
        self.token: Dict[int, str] = {}
        self.reason: Dict[int, str] = {}
        self.woken: Dict[int, List[str]] = {}

    def push(self, event: TraceEvent, tables: InternTables) -> None:
        i = len(self.uid)
        self.uid.append(event.uid)
        self.kind.append(tables.kinds.intern(event.kind))
        self.t.append(event.t)
        self.duration.append(event.duration)
        self.t_request.append(event.t_request)
        self.value.append(event.value)
        self.lock.append(tables.locks.intern(event.lock) if event.lock else -1)
        self.addr.append(tables.addrs.intern(event.addr) if event.addr else -1)
        self.flags.append(
            (FLAG_SPIN if event.spin else 0)
            | (FLAG_SHARED if event.shared else 0)
        )
        self.site.append(event.site.encode() if event.site is not None else None)
        if event.op is not None:
            self.op[i] = list(event.op)
        if event.token is not None:
            self.token[i] = event.token
        if event.reason:
            self.reason[i] = event.reason
        if event.woken:
            self.woken[i] = list(event.woken)

    def encode(self) -> dict:
        """Compact chunk object: all-default columns are omitted."""
        data = {"chunk": self.tid, "n": len(self.uid), "uid": self.uid,
                "kind": self.kind, "t": self.t}
        if any(self.duration):
            data["duration"] = self.duration
        if any(self.t_request):
            data["t_request"] = self.t_request
        if any(self.value):
            data["value"] = self.value
        if any(x >= 0 for x in self.lock):
            data["lock"] = self.lock
        if any(x >= 0 for x in self.addr):
            data["addr"] = self.addr
        if any(self.flags):
            data["flags"] = self.flags
        if any(s is not None for s in self.site):
            data["site"] = self.site
        for name in ("op", "token", "reason", "woken"):
            sparse = getattr(self, name)
            if sparse:
                data[name] = {str(k): v for k, v in sparse.items()}
        return data


_MISS = object()


def _block_col(value, start: int, stop: int) -> list:
    """Slice a vector column, or broadcast a scalar over the slice."""
    if isinstance(value, (list, tuple)):
        return list(value[start:stop])
    return [value] * (stop - start)


def _block_ids(table, value, start: int, stop: int, required: bool) -> list:
    """Interned-id column for one slice, preserving first-occurrence order.

    Interning happens here — inside the flush-slice loop — rather than
    over the whole block up front, so a symbol whose first occurrence
    falls after a segment boundary is interned after that segment's
    delta is cut, exactly as a sequence of :meth:`add` calls would do.
    """
    if isinstance(value, (list, tuple)):
        out = []
        memo: Dict[object, int] = {}
        for v in value[start:stop]:
            i = memo.get(v, _MISS)
            if i is _MISS:
                i = table.intern(v) if (required or v) else -1
                memo[v] = i
            out.append(i)
        return out
    i = table.intern(value) if (required or value) else -1
    return [i] * (stop - start)


@dataclass
class SegmentInfo:
    """One segment's entry in the sidecar index."""

    offset: int
    events: int
    digest: str


@dataclass
class SegmentedIndex:
    """The sidecar index: per-segment offsets + digests, written atomically."""

    segment_events: int
    events: int
    file_size: int
    digest: str  #: sha256 over the concatenated segment digests
    segments: List[SegmentInfo] = field(default_factory=list)
    #: byte offset of the footer block (``None`` in pre-checkpoint indexes);
    #: lets a resume at the final segment boundary seek straight to the
    #: footer for validation instead of re-reading the last segment
    footer_offset: Optional[int] = None

    def encode(self) -> dict:
        data = {
            "format": "repro-segments-index",
            "version": FORMAT_VERSION,
            "segment_events": self.segment_events,
            "events": self.events,
            "file_size": self.file_size,
            "digest": self.digest,
            "segments": [
                {"offset": s.offset, "events": s.events, "digest": s.digest}
                for s in self.segments
            ],
        }
        if self.footer_offset is not None:
            data["footer_offset"] = self.footer_offset
        return data

    @staticmethod
    def decode(data: dict) -> "SegmentedIndex":
        index = SegmentedIndex(
            segment_events=data["segment_events"],
            events=data["events"],
            file_size=data["file_size"],
            digest=data["digest"],
            footer_offset=data.get("footer_offset"),
        )
        for entry in data["segments"]:
            index.segments.append(SegmentInfo(
                offset=entry["offset"], events=entry["events"],
                digest=entry["digest"],
            ))
        return index


def index_path(path: Union[str, Path]) -> Path:
    return Path(str(path) + INDEX_SUFFIX)


def load_index(path: Union[str, Path]) -> Optional[SegmentedIndex]:
    """The sidecar index of ``path``, or ``None`` when absent/unreadable."""
    target = index_path(path)
    try:
        data = json.loads(target.read_text(encoding="utf-8"))
        if data.get("format") != "repro-segments-index":
            return None
        return SegmentedIndex.decode(data)
    except (OSError, ValueError, KeyError, TypeError):
        return None


def _write_index(data_path: Path, index: SegmentedIndex) -> None:
    """Atomically (re)write the sidecar index for ``data_path``."""
    target = index_path(data_path)
    tmp = target.with_name(f".tmp-{os.getpid()}-{target.name}")
    try:
        tmp.write_text(
            json.dumps(index.encode(), sort_keys=True,
                       separators=(",", ":")) + "\n",
            encoding="utf-8",
        )
        os.replace(tmp, target)
    finally:
        tmp.unlink(missing_ok=True)


class SegmentedTraceWriter:
    """Streaming writer: feed events in global time order, bounded memory.

    The destination is written as ``<dir>/.tmp-<pid>-<name>`` and
    atomically renamed on :meth:`close` (then the sidecar index, also
    atomically) — a crash mid-write leaves the old file intact, never a
    torn one.  Events must arrive in the global time order of
    :meth:`Trace.iter_time_order`; the writer cuts a segment every
    ``segment_events`` events.
    """

    def __init__(
        self,
        path: Union[str, Path],
        *,
        meta: TraceMeta,
        threads,
        lock_schedule: Dict[str, List[str]],
        side: Optional[SideTable] = None,
        segment_events: int = DEFAULT_SEGMENT_EVENTS,
        on_segment=None,
    ):
        if segment_events < 1:
            raise ValueError(f"segment_events must be >= 1: {segment_events}")
        self.path = Path(path)
        self.segment_events = segment_events
        #: called as ``on_segment(index, SegmentInfo)`` after each segment
        #: reaches the file — the recorder-side hook live observers attach to
        self.on_segment = on_segment
        self.threads = list(threads)
        self.tables = InternTables()
        for tid in self.threads:
            self.tables.tids.intern(tid)
        self._symbol_marks = (0, 0, len(KINDS))  # (locks, addrs, kinds) flushed
        self._chunks: Dict[str, _ChunkBuilder] = {}
        self._pending = 0
        self._segments: List[SegmentInfo] = []
        self._events_total = 0
        self._closed = False
        self._gz = _is_gz_path(self.path)
        self._tmp = self.path.with_name(f".tmp-{os.getpid()}-{self.path.name}")
        self._raw = open(self._tmp, "wb")
        header = [json.dumps({FORMAT_KEY: FORMAT_VERSION,
                              "segment_events": segment_events}),
                  json.dumps({"meta": meta.encode()}),
                  json.dumps({"lock_schedule": lock_schedule}),
                  json.dumps({"threads": self.threads})]
        if side is not None and side.deltas:
            header.append(json.dumps({"side": side.encode()}))
        self._write_block(header)

    def _write_block(self, lines: List[str]) -> int:
        """One block (= one gzip member on .gz paths); returns its offset."""
        offset = self._raw.tell()
        text = "".join(line + "\n" for line in lines)
        if self._gz:
            # per-block members: mtime=0 + empty name keep bytes
            # deterministic, and each member is independently seekable;
            # level 6 compresses JSON lines ~2x faster than the level-9
            # default for ~1% larger files — write time is the
            # generator's bottleneck, not disk
            with gzip.GzipFile(filename="", fileobj=self._raw, mode="wb",
                               compresslevel=6, mtime=0) as member:
                member.write(text.encode("utf-8"))
        else:
            self._raw.write(text.encode("utf-8"))
        # push the block to the OS now: a live tail reader (SegmentTail)
        # must see whole blocks, not whatever the userspace buffer held
        self._raw.flush()
        return offset

    def add(self, event: TraceEvent) -> None:
        builder = self._chunks.get(event.tid)
        if builder is None:
            if event.tid not in self.tables.tids:
                raise TraceError(
                    f"event {event.uid} references undeclared thread "
                    f"{event.tid!r}"
                )
            builder = self._chunks[event.tid] = _ChunkBuilder(event.tid)
        builder.push(event, self.tables)
        self._pending += 1
        if self._pending >= self.segment_events:
            self._flush_segment()

    def add_block(
        self,
        tid: str,
        *,
        uids,
        kinds,
        t,
        duration=0,
        t_request=0,
        value=0,
        lock="",
        addr="",
        spin=False,
        shared=False,
        sites=None,
        op=None,
        token=None,
        reason=None,
        woken=None,
    ) -> None:
        """Append ``len(uids)`` consecutive events of one thread in bulk.

        Columnar twin of :meth:`add`: the call is byte-for-byte
        equivalent to adding the same events one at a time — same
        segment boundaries, same per-segment symbol deltas, same chunk
        encoding — but skips per-event :class:`TraceEvent` construction
        and ``push`` dispatch, which dominates synthetic-trace
        generation at the 10M-event scale.

        ``uids`` fixes the block length; every other column is either a
        sequence of that length or a scalar broadcast over the block
        (strings count as scalars).  ``sites`` takes ``CodeSite``
        objects (or ``None``); ``op``/``token``/``reason``/``woken``
        are sparse mappings keyed by block-relative index with the same
        value filters :meth:`add` applies.  Events must still arrive in
        global time order across calls.
        """
        n = len(uids)
        if n == 0:
            return
        if tid not in self.tables.tids:
            raise TraceError(
                f"event {uids[0]} references undeclared thread {tid!r}"
            )
        for name, column in (("kinds", kinds), ("t", t),
                             ("duration", duration), ("t_request", t_request),
                             ("value", value), ("lock", lock), ("addr", addr),
                             ("spin", spin), ("shared", shared),
                             ("sites", sites)):
            if isinstance(column, (list, tuple)) and len(column) != n:
                raise TraceError(
                    f"add_block column {name!r}: {len(column)} values "
                    f"for {n} events"
                )
        flags_vec = isinstance(spin, (list, tuple)) or isinstance(
            shared, (list, tuple)
        )
        start = 0
        while start < n:
            take = min(n - start, self.segment_events - self._pending)
            stop = start + take
            builder = self._chunks.get(tid)
            if builder is None:
                builder = self._chunks[tid] = _ChunkBuilder(tid)
            base = len(builder.uid)
            builder.uid.extend(uids[start:stop])
            builder.kind.extend(_block_ids(
                self.tables.kinds, kinds, start, stop, required=True))
            builder.t.extend(_block_col(t, start, stop))
            builder.duration.extend(_block_col(duration, start, stop))
            builder.t_request.extend(_block_col(t_request, start, stop))
            builder.value.extend(_block_col(value, start, stop))
            builder.lock.extend(_block_ids(
                self.tables.locks, lock, start, stop, required=False))
            builder.addr.extend(_block_ids(
                self.tables.addrs, addr, start, stop, required=False))
            if flags_vec:
                builder.flags.extend(
                    (FLAG_SPIN if sp else 0) | (FLAG_SHARED if sh else 0)
                    for sp, sh in zip(_block_col(spin, start, stop),
                                      _block_col(shared, start, stop))
                )
            else:
                builder.flags.extend(_block_col(
                    (FLAG_SPIN if spin else 0)
                    | (FLAG_SHARED if shared else 0), start, stop))
            if sites is None:
                builder.site.extend([None] * take)
            else:
                builder.site.extend(
                    s.encode() if s is not None else None
                    for s in _block_col(sites, start, stop)
                )
            if op:
                for j, v in op.items():
                    if start <= j < stop and v is not None:
                        builder.op[base + j - start] = list(v)
            if token:
                for j, v in token.items():
                    if start <= j < stop and v is not None:
                        builder.token[base + j - start] = v
            if reason:
                for j, v in reason.items():
                    if start <= j < stop and v:
                        builder.reason[base + j - start] = v
            if woken:
                for j, v in woken.items():
                    if start <= j < stop and v:
                        builder.woken[base + j - start] = list(v)
            self._pending += take
            if self._pending >= self.segment_events:
                self._flush_segment()
            start = stop

    def _symbol_delta(self) -> dict:
        locks_mark, addrs_mark, kinds_mark = self._symbol_marks
        delta = {}
        locks = self.tables.locks.encode()[locks_mark:]
        addrs = self.tables.addrs.encode()[addrs_mark:]
        kinds = self.tables.kinds.encode()[kinds_mark:]
        if locks:
            delta["locks"] = locks
        if addrs:
            delta["addrs"] = addrs
        if kinds:
            delta["kinds"] = kinds
        self._symbol_marks = (
            len(self.tables.locks), len(self.tables.addrs),
            len(self.tables.kinds),
        )
        return delta

    def _flush_segment(self) -> None:
        if not self._pending:
            return
        k = len(self._segments)
        header = {"segment": k, "events": self._pending}
        delta = self._symbol_delta()
        if delta:
            header["symbols"] = delta
        lines = [json.dumps(header)]
        # chunks in thread declaration order, so reconstruction order is
        # independent of which thread happened to log first
        for tid in self.threads:
            builder = self._chunks.get(tid)
            if builder is not None and builder.uid:
                lines.append(json.dumps(builder.encode()))
        digest = hashlib.sha256()
        for line in lines:
            digest.update(line.encode("utf-8"))
            digest.update(b"\n")
        digest = digest.hexdigest()
        lines.append(json.dumps({"segment_end": k, "digest": digest}))
        offset = self._write_block(lines)
        crash_point("segments.flush")
        info = SegmentInfo(
            offset=offset, events=self._pending, digest=digest,
        )
        self._segments.append(info)
        self._events_total += self._pending
        self._pending = 0
        self._chunks = {}
        if self.on_segment is not None:
            self.on_segment(k, info)

    def close(self) -> SegmentedIndex:
        if self._closed:
            raise TraceError(f"segmented writer for {self.path} already closed")
        self._flush_segment()
        combined = hashlib.sha256()
        for info in self._segments:
            combined.update(info.digest.encode("utf-8"))
        combined = combined.hexdigest()
        footer_offset = self._write_block([json.dumps({"footer": {
            "segments": len(self._segments),
            "events": self._events_total,
            "digest": combined,
        }})])
        self._raw.close()
        crash_point("segments.close")
        try:
            os.replace(self._tmp, self.path)
        except BaseException:
            self._tmp.unlink(missing_ok=True)
            raise
        self._closed = True
        crash_point("segments.index")
        index = SegmentedIndex(
            segment_events=self.segment_events,
            events=self._events_total,
            file_size=self.path.stat().st_size,
            digest=combined,
            segments=self._segments,
            footer_offset=footer_offset,
        )
        _write_index(self.path, index)
        return index

    def abort(self) -> None:
        """Discard the partially-written temp file (crash-path cleanup)."""
        if not self._closed:
            self._raw.close()
            self._tmp.unlink(missing_ok=True)
            self._closed = True


def write_segmented(
    trace: Trace,
    path: Union[str, Path],
    *,
    segment_events: int = DEFAULT_SEGMENT_EVENTS,
    on_segment=None,
) -> SegmentedIndex:
    """Write ``trace`` to ``path`` in the segmented format (atomically).

    ``on_segment(index, SegmentInfo)`` fires after every segment reaches
    the file — in-process pipelines hook a live fold onto it.
    """
    writer = SegmentedTraceWriter(
        path,
        meta=trace.meta,
        threads=trace.thread_ids,
        lock_schedule=trace.lock_schedule,
        side=trace.side,
        segment_events=segment_events,
        on_segment=on_segment,
    )
    try:
        for event in trace.iter_time_order():
            writer.add(event)
    except BaseException:
        writer.abort()
        raise
    return writer.close()


# ------------------------------------------------------------------ reader


@dataclass
class SegmentChunk:
    """One thread's events within one segment, in columnar form.

    ``start`` is the thread-global index of the chunk's first event —
    event ``i`` of ``column`` is event ``start + i`` of the thread.
    """

    tid: str
    column: ColumnarThread
    start: int


@dataclass
class Segment:
    """One decoded segment: immutable, self-contained, digest-checked."""

    index: int
    events: int
    digest: str
    chunks: List[SegmentChunk] = field(default_factory=list)


class SegmentedReader:
    """Streaming reader over a segmented trace file.

    After construction the header is parsed: ``meta``, ``threads``,
    ``lock_schedule``, ``side`` and ``segment_events`` are available and
    ``tables`` holds the (growing) intern tables.  :meth:`segments` then
    yields one :class:`Segment` at a time — strict mode raises
    :class:`TraceError` at the first structural damage or digest
    mismatch; the tolerant iterator underpinning salvage stops instead.
    """

    def __init__(self, path: Union[str, Path], *, _handle=None):
        self.path = Path(path)
        self.source = str(path)
        # _handle is the SegmentTail hook: an already-decoded line source
        # (fed only *complete* blocks) replaces the on-disk stream
        self._handle = _handle if _handle is not None else _open_text(self.path)
        self._lines = iter(self._handle)
        self.tables = InternTables()
        self.stop_reason = ""
        self.footer: Optional[dict] = None
        self.events_seen = 0
        self._thread_counts: Dict[str, int] = {}
        self._consumed = False
        self._resume_segments_read = 0
        try:
            self._read_header()
        except BaseException:
            self._handle.close()
            raise

    # -- context manager -------------------------------------------------

    def __enter__(self) -> "SegmentedReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        self._handle.close()
        raw = getattr(self, "_raw_handle", None)
        if raw is not None:
            # gzip.open over a fileobj does not close that fileobj
            raw.close()
            self._raw_handle = None

    # -- header ----------------------------------------------------------

    def _next(self):
        """Next non-blank line as (raw, parsed) or None at end of stream.

        Stream damage (truncated gzip member, bad bytes, malformed JSON)
        surfaces as :class:`TraceError` so every caller — header parse,
        strict iteration, chunk reads inside a segment — fails uniformly;
        the tolerant iterator turns it into a stop reason.
        """
        try:
            for raw in self._lines:
                if not raw.strip():
                    continue
                data = json.loads(raw)
                if not isinstance(data, dict):
                    raise TraceError(
                        f"malformed segmented trace line: expected object, "
                        f"got {data!r}"
                    )
                return raw, data
            return None
        except (EOFError, OSError, zlib.error, UnicodeDecodeError) as exc:
            raise TraceError(
                f"unreadable segmented trace {self.path}: {exc}"
            ) from None
        except json.JSONDecodeError as exc:
            raise TraceError(
                f"malformed segmented trace line: {exc}"
            ) from None

    def _read_header(self) -> None:
        try:
            first = self._next()
        except (EOFError, OSError, zlib.error, UnicodeDecodeError,
                json.JSONDecodeError) as exc:
            raise TraceError(
                f"unreadable segmented trace {self.path}: {exc}"
            ) from None
        if first is None or FORMAT_KEY not in first[1]:
            raise TraceError(f"{self.path} is not a segmented trace")
        version = first[1][FORMAT_KEY]
        if version != FORMAT_VERSION:
            raise TraceError(
                f"unsupported segmented trace version {version!r} "
                f"(supported: {FORMAT_VERSION})"
            )
        self.segment_events = first[1].get("segment_events", 0)
        try:
            meta = self._next()
            schedule = self._next()
            threads = self._next()
        except (EOFError, OSError, zlib.error, UnicodeDecodeError,
                json.JSONDecodeError) as exc:
            raise TraceError(
                f"truncated segmented trace header: {exc}"
            ) from None
        if (meta is None or schedule is None or threads is None
                or "meta" not in meta[1] or "lock_schedule" not in schedule[1]
                or "threads" not in threads[1]):
            raise TraceError("malformed segmented trace header")
        self.meta = TraceMeta.decode(meta[1]["meta"])
        self.lock_schedule = {
            lock: list(uids)
            for lock, uids in schedule[1]["lock_schedule"].items()
        }
        self.threads = list(threads[1]["threads"])
        for tid in self.threads:
            self.tables.tids.intern(tid)
            self._thread_counts[tid] = 0
        self.side = SideTable()
        self._peeked = None
        nxt = self._next()
        if nxt is not None and set(nxt[1]) == {"side"}:
            self.side = SideTable.decode(nxt[1]["side"])
        else:
            self._peeked = nxt

    def _next_or_peeked(self):
        if self._peeked is not None:
            entry, self._peeked = self._peeked, None
            return entry
        return self._next()

    # -- segments --------------------------------------------------------

    def _apply_symbols(self, delta: dict) -> None:
        for name in delta.get("locks", ()):
            self.tables.locks.intern(name)
        for name in delta.get("addrs", ()):
            self.tables.addrs.intern(name)
        for name in delta.get("kinds", ()):
            self.tables.kinds.intern(name)

    def _decode_chunk(self, data: dict) -> SegmentChunk:
        tid = data["chunk"]
        if tid not in self._thread_counts:
            raise TraceError(f"chunk references undeclared thread {tid!r}")
        n = data["n"]
        from array import array

        column = ColumnarThread(tid, self.tables.tids.id(tid), self.tables)
        column.uids = list(data["uid"])
        column.kind = array("b", data["kind"])
        column.t = array("q", data["t"])
        column.duration = array("q", data.get("duration") or [0] * n)
        column.t_request = array("q", data.get("t_request") or [0] * n)
        column.value = array("q", data.get("value") or [0] * n)
        column.lock_id = array("i", data.get("lock") or [-1] * n)
        column.addr_id = array("i", data.get("addr") or [-1] * n)
        column.flags = array("B", data.get("flags") or [0] * n)
        sites = data.get("site")
        if sites is None:
            column.sites = [None] * n
        else:
            column.sites = [CodeSite.decode(s) for s in sites]
        if len(column.uids) != n or len(column.kind) != n or len(column.t) != n:
            raise TraceError(f"chunk for {tid!r} has inconsistent lengths")
        column.ops = {int(k): tuple(v) for k, v in data.get("op", {}).items()}
        column.tokens = {int(k): v for k, v in data.get("token", {}).items()}
        column.reasons = {int(k): v for k, v in data.get("reason", {}).items()}
        column.woken = {
            int(k): list(v) for k, v in data.get("woken", {}).items()
        }
        start = self._thread_counts[tid]
        self._thread_counts[tid] = start + n
        return SegmentChunk(tid=tid, column=column, start=start)

    def _read_segment(self, entry) -> Optional[Segment]:
        """Parse one segment (or the footer, returning None)."""
        raw, data = entry
        if "footer" in data:
            footer = data["footer"]
            if footer.get("segments") != self._segments_read:
                raise TraceError(
                    f"segmented trace footer declares "
                    f"{footer.get('segments')} segments, read "
                    f"{self._segments_read}"
                )
            if footer.get("events") != self.events_seen:
                raise TraceError(
                    f"segmented trace footer declares {footer.get('events')} "
                    f"events, read {self.events_seen}"
                )
            self.footer = footer
            return None
        if "segment" not in data:
            raise TraceError(
                f"malformed segmented trace: expected segment header, "
                f"got keys {sorted(data)}"
            )
        k = data["segment"]
        if k != self._segments_read:
            raise TraceError(
                f"segment {k} out of order (expected {self._segments_read})"
            )
        digest = hashlib.sha256()
        digest.update(raw.rstrip("\n").encode("utf-8"))
        digest.update(b"\n")
        self._apply_symbols(data.get("symbols", {}))
        segment = Segment(index=k, events=data["events"], digest="")
        seen = 0
        chunk_tids = set()
        while True:
            entry = self._next()
            if entry is None:
                raise TraceError(f"segment {k} truncated: missing segment_end")
            raw, chunk_data = entry
            if "segment_end" in chunk_data:
                if chunk_data["segment_end"] != k:
                    raise TraceError(
                        f"segment_end {chunk_data['segment_end']} inside "
                        f"segment {k}"
                    )
                want = chunk_data.get("digest")
                got = digest.hexdigest()
                if want != got:
                    raise TraceError(
                        f"segment {k} digest mismatch: file says {want}, "
                        f"content hashes to {got}"
                    )
                segment.digest = got
                break
            if "chunk" not in chunk_data:
                raise TraceError(
                    f"malformed line inside segment {k}: keys "
                    f"{sorted(chunk_data)}"
                )
            digest.update(raw.rstrip("\n").encode("utf-8"))
            digest.update(b"\n")
            chunk = self._decode_chunk(chunk_data)
            if chunk.tid in chunk_tids:
                raise TraceError(
                    f"segment {k} holds two chunks for thread {chunk.tid!r}"
                )
            chunk_tids.add(chunk.tid)
            segment.chunks.append(chunk)
            seen += len(chunk.column)
        if seen != segment.events:
            raise TraceError(
                f"segment {k} declares {segment.events} events, "
                f"chunks hold {seen}"
            )
        self.events_seen += seen
        self._segments_read += 1
        return segment

    def segments(self) -> Iterator[Segment]:
        """Strict streaming iteration: any damage raises ``TraceError``."""
        self._start_iteration()
        while True:
            try:
                entry = self._next_or_peeked()
            except (EOFError, OSError, zlib.error, UnicodeDecodeError) as exc:
                raise TraceError(
                    f"unreadable segmented trace tail: {exc}"
                ) from None
            except json.JSONDecodeError as exc:
                raise TraceError(
                    f"malformed segmented trace line: {exc}"
                ) from None
            if entry is None:
                raise TraceError(
                    "truncated segmented trace: missing footer "
                    f"(read {self._segments_read} segments)"
                )
            segment = self._read_segment(entry)
            if segment is None:
                return
            yield segment

    def segments_tolerant(self) -> Iterator[Segment]:
        """Salvage iteration: stops at the first damage, keeping the
        well-formed segment prefix; the reason lands in ``stop_reason``."""
        self._start_iteration()
        while True:
            try:
                entry = self._next_or_peeked()
                if entry is None:
                    self.stop_reason = "missing footer"
                    return
                segment = self._read_segment(entry)
            except TraceError as exc:
                self.stop_reason = str(exc)
                return
            except (EOFError, OSError, zlib.error, UnicodeDecodeError) as exc:
                self.stop_reason = f"unreadable tail: {exc}"
                return
            except (json.JSONDecodeError, KeyError, TypeError,
                    ValueError) as exc:
                self.stop_reason = f"malformed segment: {exc}"
                return
            if segment is None:
                return
            yield segment

    def _start_iteration(self) -> None:
        if self._consumed:
            raise TraceError(
                f"segmented reader for {self.path} already consumed; "
                "open a new reader to re-stream"
            )
        self._consumed = True
        self._segments_read = self._resume_segments_read

    # -- checkpoint support ----------------------------------------------

    def suspend(self) -> dict:
        """Picklable mid-stream state, captured at a segment boundary.

        Everything a fresh reader needs to continue where this one is:
        the (monotonically grown) intern tables, per-thread event counts
        (chunk ``start`` offsets), and the stream position in segments
        and events.  Valid only between segments — i.e. from a consumer
        that checkpoints after fully processing a yielded segment.
        """
        return {
            "tables": self.tables,
            "thread_counts": dict(self._thread_counts),
            "segments_read": getattr(self, "_segments_read",
                                     self._resume_segments_read),
            "events_seen": self.events_seen,
        }

    def resume(self, state: dict) -> int:
        """Fast-forward this *fresh* reader to a suspended position.

        Seeks straight to the next unread segment via the sidecar index
        (rebuilding it if needed) and adopts the suspended intern tables
        and counts; iteration then continues with segment ``k`` as if
        the first ``k`` had just been streamed.  Returns ``k``.  Raises
        :class:`TraceError` when the file cannot back the state (no
        index and not reconstructable, fewer segments than claimed) —
        callers fall back to a full restart.
        """
        if self._consumed:
            raise TraceError("cannot resume a consumed reader")
        k = state["segments_read"]
        if k < 0:
            raise TraceError(f"invalid resume state: segments_read={k}")
        if k > 0:
            index = ensure_index(self.path)
            if index is None or len(index.segments) < k:
                raise TraceError(
                    f"{self.path} cannot back a resume at segment {k}"
                )
            if k < len(index.segments):
                offset = index.segments[k].offset
            elif index.footer_offset is not None:
                offset = index.footer_offset
            else:
                raise TraceError(
                    f"index for {self.path} lacks a footer offset; "
                    f"cannot resume at the final boundary"
                )
            self._reopen_at(offset)
        self.tables = state["tables"]
        self._thread_counts = dict(state["thread_counts"])
        self.events_seen = state["events_seen"]
        self._resume_segments_read = k
        return k

    def _reopen_at(self, offset: int) -> None:
        """Point the line stream at an absolute byte offset.

        On ``.gz`` containers every block is its own gzip member, so any
        block offset is a valid decompression start; the container kind
        is re-probed from the magic bytes, as in :func:`_open_text`.
        """
        self.close()
        raw = open(self.path, "rb")
        try:
            magic = raw.read(2)
            raw.seek(offset)
            if magic == _GZIP_MAGIC:
                self._handle = gzip.open(raw, "rt", encoding="utf-8")
                self._raw_handle = raw
            else:
                self._handle = io.TextIOWrapper(raw, encoding="utf-8")
        except BaseException:
            raw.close()
            raise
        self._lines = iter(self._handle)
        self._peeked = None


def open_segmented(path: Union[str, Path]) -> SegmentedReader:
    """Open a segmented trace for streaming (header parsed eagerly)."""
    return SegmentedReader(path)


# ---------------------------------------------------------------- tailing


class _LineFeed:
    """Line source for a tail-driven :class:`SegmentedReader`.

    Holds only *complete* decoded lines; the tail driver guarantees the
    reader is never advanced past what has been fed, so running dry here
    is a driver bug, not an end-of-stream condition.
    """

    def __init__(self):
        self._lines: List[str] = []
        self._pos = 0

    def feed(self, lines: List[str]) -> None:
        self._lines.extend(lines)
        if self._pos > 4096:  # reclaim consumed prefix occasionally
            del self._lines[: self._pos]
            self._pos = 0

    def __len__(self) -> int:
        return len(self._lines) - self._pos

    def __iter__(self):
        return self

    def __next__(self) -> str:
        if self._pos >= len(self._lines):
            raise TraceError(
                "segment tail driver advanced the parser past the fed "
                "lines (internal invariant violation)"
            )
        line = self._lines[self._pos]
        self._pos += 1
        return line

    def close(self) -> None:
        self._lines = []
        self._pos = 0


class SegmentTail:
    """Incremental reader over a (possibly still growing) segmented trace.

    The writer appends whole blocks — on ``.gz`` paths one gzip member
    per block — and renames ``.tmp-<pid>-<name>`` to the final path only
    at close.  This reader follows either file, consuming bytes only up
    to the last *complete* block boundary, so a mid-write tail (a
    partial gzip member, a line without its newline) is treated as
    "not yet written" and retried on the next :meth:`poll` — never
    misdiagnosed as corruption.  Damage *inside* a complete block
    (digest mismatch, malformed JSON, out-of-order segments) still
    raises :class:`TraceError` exactly like the strict reader: the torn
    / corrupt verdict is reserved for bytes the writer claims finished.

    Typical loop::

        tail = SegmentTail(path)
        while not tail.complete:
            for segment in tail.poll():
                fold(segment)
            time.sleep(interval)
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        #: byte offset of the first unconsumed block in the active file
        self.offset = 0
        #: True once the footer block has been parsed
        self.complete = False
        self._carry = b""            # bytes past the last complete boundary
        self._gz: Optional[bool] = None  # sniffed from the first 2 bytes
        self._feed = _LineFeed()
        self._reader: Optional[SegmentedReader] = None
        self._gen = None
        #: segment_end/footer lines fed but not yet consumed by the parser
        self._terminators = 0
        #: opt-in per-segment boundary capture for :meth:`suspend_at`
        #: (off by default: only checkpointing consumers need it)
        self.keep_boundaries = False
        self._suspends: Dict[int, dict] = {}
        self._closed = False

    # -- file discovery ---------------------------------------------------

    def active_path(self) -> Optional[Path]:
        """The file currently backing the trace: the final path once the
        writer's atomic rename happened, else the in-progress temp file.

        Byte offsets are preserved across the rename (same content, new
        name), so switching files mid-tail is seamless."""
        if self.path.exists():
            return self.path
        pattern = f".tmp-*-{self.path.name}"
        candidates = sorted(self.path.parent.glob(pattern))
        if not candidates:
            return None
        if len(candidates) > 1:
            # several writers (or leftovers): newest mtime wins

            def _mtime(p: Path) -> float:
                try:
                    return p.stat().st_mtime
                except OSError:
                    return 0.0  # renamed away mid-sort: deprioritize

            candidates.sort(key=lambda p: (_mtime(p), p.name))
        return candidates[-1]

    # -- byte-level completeness ------------------------------------------

    def _pull_bytes(self) -> bool:
        """Read newly appended bytes into the carry buffer."""
        active = self.active_path()
        if active is None:
            return False
        read_from = self.offset + len(self._carry)
        try:
            with open(active, "rb") as raw:
                raw.seek(read_from)
                data = raw.read()
        except OSError:
            return False  # renamed between glob and open: retry next poll
        if not data:
            return False
        self._carry += data
        return True

    def _complete_text(self) -> str:
        """Split decoded text of all complete blocks off the carry buffer.

        gz containers: whole gzip members only — a trailing partial
        member stays in the carry (``incomplete tail, retry later``).
        Plain containers: whole lines only (terminated by a newline).
        """
        if self._gz is None:
            if len(self._carry) < 2:
                return ""
            self._gz = self._carry[:2] == _GZIP_MAGIC
        if not self._gz:
            cut = self._carry.rfind(b"\n")
            if cut < 0:
                return ""
            complete, self._carry = self._carry[: cut + 1], self._carry[cut + 1:]
            self.offset += len(complete)
            try:
                return complete.decode("utf-8")
            except UnicodeDecodeError as exc:
                raise TraceError(
                    f"unreadable segmented trace tail {self.path}: {exc}"
                ) from None
        pieces: List[str] = []
        while self._carry:
            decomp = zlib.decompressobj(wbits=31)
            try:
                out = decomp.decompress(self._carry)
            except zlib.error as exc:
                raise TraceError(
                    f"unreadable segmented trace tail {self.path}: {exc}"
                ) from None
            if not decomp.eof:
                break  # partial member still being written: retry later
            member_len = len(self._carry) - len(decomp.unused_data)
            self._carry = self._carry[member_len:]
            self.offset += member_len
            try:
                pieces.append(out.decode("utf-8"))
            except UnicodeDecodeError as exc:
                raise TraceError(
                    f"unreadable segmented trace tail {self.path}: {exc}"
                ) from None
        return "".join(pieces)

    # -- parsing ----------------------------------------------------------

    def _feed_lines(self, text: str) -> None:
        lines = text.splitlines(keepends=True)
        for line in lines:
            if line.startswith('{"segment_end"') or line.startswith('{"footer"'):
                self._terminators += 1
        self._feed.feed(lines)

    def _ensure_reader(self) -> bool:
        """Construct the inner strict reader once the header is parseable.

        Header parsing peeks one line past the header block, so it is
        deferred until the feed holds a block-start marker line — which
        also guarantees the optional ``side`` line has been settled."""
        if self._reader is not None:
            return True
        if self._terminators == 0:
            return False
        self._reader = SegmentedReader(self.path, _handle=self._feed)
        self._gen = self._reader.segments()
        return True

    def poll(self) -> List[Segment]:
        """All segments that have become complete since the last poll.

        Returns ``[]`` while the writer is mid-block (or idle); raises
        :class:`TraceError` on damage inside completed blocks.  After the
        footer is parsed :attr:`complete` turns True and further polls
        return ``[]``."""
        if self._closed:
            raise TraceError(f"segment tail for {self.path} is closed")
        if self.complete:
            return []
        if self._pull_bytes() or self._carry:
            text = self._complete_text()
            if text:
                self._feed_lines(text)
        if not self._ensure_reader():
            return []
        out: List[Segment] = []
        while self._terminators > 0:
            try:
                segment = next(self._gen)
            except StopIteration:
                self.complete = True
                self._terminators = 0
                break
            self._terminators -= 1
            if self.keep_boundaries:
                # a poll can parse ahead of the consumer's fold position,
                # and a checkpoint at fold position k needs the reader
                # state *as of k*, not the parse frontier (suspend_at)
                self._suspends[self._reader._segments_read] = (
                    self._reader.suspend()
                )
            out.append(segment)
        return out

    # -- reader facade ----------------------------------------------------

    @property
    def header_ready(self) -> bool:
        """True once meta/threads/lock_schedule are available."""
        return self._reader is not None

    def __getattr__(self, name):
        if name in ("meta", "threads", "lock_schedule", "side", "tables",
                    "segment_events", "footer", "events_seen"):
            if self._reader is None:
                raise TraceError(
                    f"segmented trace header not yet available for "
                    f"{self.path}; poll() until header_ready"
                )
            return getattr(self._reader, name)
        raise AttributeError(name)

    @property
    def segments_read(self) -> int:
        if self._reader is None:
            return 0
        return getattr(self._reader, "_segments_read", 0)

    def suspend(self) -> dict:
        """Checkpoint-shaped mid-stream state (see
        :meth:`SegmentedReader.suspend`); valid at segment boundaries."""
        if self._reader is None:
            raise TraceError(f"nothing read yet from {self.path}")
        return self._reader.suspend()

    def suspend_at(self, k: int) -> dict:
        """Checkpoint-shaped reader state as of ``k`` segments consumed.

        :meth:`poll` records the boundary state after each parsed
        segment precisely because parsing can run ahead of the caller's
        processing; states at or below ``k`` are dropped (a checkpoint at
        ``k`` supersedes them).  The intern tables in the state are the
        live (monotonically grown, possibly ahead) tables — interning is
        idempotent by name, so a superset is valid resume state; the
        positional fields (``thread_counts``, ``events_seen``,
        ``segments_read``) are exact for ``k``.
        """
        try:
            state = self._suspends[k]
        except KeyError:
            raise TraceError(
                f"no boundary state for segment position {k} of {self.path}"
            ) from None
        for done in [pos for pos in self._suspends if pos <= k]:
            del self._suspends[done]
        return state

    def __enter__(self) -> "SegmentTail":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        self._closed = True
        self._feed.close()
        self._reader = None
        self._gen = None


# ------------------------------------------------- whole-trace (compat)


def load_segmented(path: Union[str, Path]) -> Trace:
    """Materialize a segmented file as a full :class:`Trace` (strict).

    The compatibility path: every command that needs a whole trace
    (replay, transform, report, ...) loads segmented files through here.
    Memory is O(trace) by definition — use the streaming readers for
    bounded-memory analysis.
    """
    with open_segmented(path) as reader:
        trace = Trace(reader.meta)
        for tid in reader.threads:
            trace.add_thread(tid)
        trace.side = reader.side
        for segment in reader.segments():
            for chunk in segment.chunks:
                events = trace.threads[chunk.tid]
                column = chunk.column
                for i in range(len(column)):
                    events.append(column.event(i))
        trace.lock_schedule = {
            lock: list(uids) for lock, uids in reader.lock_schedule.items()
        }
        trace.symbols = reader.tables
        return trace


def load_segmented_columnar(path: Union[str, Path]) -> ColumnarTrace:
    """Materialize a segmented file as a :class:`ColumnarTrace` (strict).

    The chunks of a segment stream already *are* interned columns over
    the (delta-merged) global tables, so assembly is per-thread array
    concatenation — no event object is ever built.  This is the input
    path for whole-trace analysis at streaming scale: the engine and the
    vectorized kernels consume the columns directly, and downstream
    events materialize lazily only where something touches them.
    """
    with open_segmented(path) as reader:
        columns: Dict[str, ColumnarThread] = {}
        parts: Dict[str, List[ColumnarThread]] = {}
        for segment in reader.segments():
            for chunk in segment.chunks:
                parts.setdefault(chunk.tid, []).append(chunk.column)
        # tables are complete only after every segment's deltas applied
        tables = reader.tables
        trace = ColumnarTrace(
            reader.meta,
            reader.side,
            {lock: list(uids) for lock, uids in reader.lock_schedule.items()},
            tables=tables,
        )
        for tid in reader.threads:
            column = ColumnarThread(tid, tables.tids.id(tid), tables)
            columns[tid] = column
            trace.columns[tid] = column
        for tid, chunks in parts.items():
            column = columns[tid]
            base = 0
            for part in chunks:
                for name in ("kind", "t", "duration", "t_request", "value",
                             "lock_id", "addr_id", "flags"):
                    getattr(column, name).extend(getattr(part, name))
                column.uids.extend(part.uids)
                column.sites.extend(part.sites)
                for attr in ("ops", "tokens", "reasons", "woken"):
                    sparse = getattr(part, attr)
                    if sparse:
                        merged = getattr(column, attr)
                        for i, v in sparse.items():
                            merged[i + base] = v
                base += len(part.kind)
        return trace


def salvage_segmented(path: Union[str, Path]):
    """Best-effort load: the longest well-formed segment prefix.

    Damage inside segment ``k`` drops segments ``k..`` entirely (a
    partially-decoded segment is never trusted), then the standard
    salvage trim makes the surviving prefix replayable.  Raises
    :class:`TraceError` only when the header itself is unreadable.
    """
    from repro.trace import serialize

    with open_segmented(path) as reader:
        trace = Trace(reader.meta)
        for tid in reader.threads:
            trace.add_thread(tid)
        trace.side = reader.side
        seen = 0
        for segment in reader.segments_tolerant():
            for chunk in segment.chunks:
                events = trace.threads[chunk.tid]
                column = chunk.column
                for i in range(len(column)):
                    events.append(column.event(i))
            seen += segment.events
        expected = None
        if reader.footer is not None:
            expected = reader.footer.get("events")
        else:
            index = load_index(path)
            if index is not None:
                expected = index.events
        return serialize.finish_salvage(
            trace,
            {lock: list(uids) for lock, uids in reader.lock_schedule.items()},
            expected_events=expected if isinstance(expected, int) else None,
            seen_events=seen,
            stop_reason=reader.stop_reason,
            source=path,
        )


# ------------------------------------------------- index reconstruction


def _gzip_member_offsets(path: Path) -> List[int]:
    """Byte offset of every gzip member (= every block) in ``path``.

    Streams the file through ``zlib`` tracking where each member's
    compressed bytes end (``unused_data`` marks the handoff), so the
    whole scan decompresses each byte once and holds one chunk in
    memory.
    """
    offsets: List[int] = []
    pos = 0  # absolute offset of the start of the unconsumed bytes
    decomp = None
    with open(path, "rb") as raw:
        while True:
            chunk = raw.read(1 << 16)
            if not chunk:
                break
            while chunk:
                if decomp is None:
                    offsets.append(pos)
                    decomp = zlib.decompressobj(wbits=31)
                decomp.decompress(chunk)
                if decomp.eof:
                    unused = decomp.unused_data
                    pos += len(chunk) - len(unused)
                    chunk = unused
                    decomp = None
                else:
                    pos += len(chunk)
                    chunk = b""
    if decomp is not None:
        raise TraceError(f"{path} ends inside a gzip member")
    return offsets


def _plain_block_offsets(path: Path) -> List[int]:
    """Block offsets of an uncompressed segmented file, by line scan.

    The canonical ``json.dumps`` encoding guarantees a segment header
    line starts with exactly ``{"segment":`` (the colon excludes
    ``{"segment_end":``) and the footer with ``{"footer":``; the header
    block is offset 0 by construction.
    """
    offsets = [0]
    pos = 0
    with open(path, "rb") as raw:
        for line in raw:
            if line.startswith(b'{"segment":') or line.startswith(b'{"footer":'):
                offsets.append(pos)
            pos += len(line)
    return offsets


def rebuild_index(path: Union[str, Path]) -> Optional[SegmentedIndex]:
    """Reconstruct the sidecar index from the data file alone.

    One strict streaming pass yields the digests and event counts; the
    block offsets come from the gzip member boundaries (or a line scan
    for plain files).  Returns ``None`` when the data file itself is
    damaged — an index must never vouch for bytes it cannot verify.
    """
    path = Path(path)
    try:
        with open(path, "rb") as probe:
            magic = probe.read(2)
        offsets = (_gzip_member_offsets(path) if magic == _GZIP_MAGIC
                   else _plain_block_offsets(path))
        infos: List[SegmentInfo] = []
        with open_segmented(path) as reader:
            for segment in reader.segments():
                infos.append(SegmentInfo(
                    offset=0, events=segment.events, digest=segment.digest,
                ))
            footer = reader.footer or {}
            segment_events = reader.segment_events
            events_total = reader.events_seen
        file_size = path.stat().st_size
    except (TraceError, OSError, EOFError, zlib.error, UnicodeDecodeError,
            ValueError, KeyError):
        return None
    # blocks are [header, segment 0..K-1, footer]
    if len(offsets) != len(infos) + 2:
        return None
    for info, offset in zip(infos, offsets[1:]):
        info.offset = offset
    return SegmentedIndex(
        segment_events=segment_events,
        events=events_total,
        file_size=file_size,
        digest=footer.get("digest", ""),
        segments=infos,
        footer_offset=offsets[-1],
    )


def ensure_index(path: Union[str, Path]) -> Optional[SegmentedIndex]:
    """A fresh sidecar index for ``path``, rebuilding it if needed.

    A missing or stale sidecar — e.g. a writer killed between installing
    the data file and writing the index, or a crashed rewrite leaving a
    size mismatch — is silently re-indexed from the data file and
    rewritten (atomically), not warned about: the data file is the
    authority and the index is derived state.  Returns ``None`` only
    when the data file itself is damaged.
    """
    path = Path(path)
    try:
        file_size = path.stat().st_size
    except OSError:
        return None
    index = load_index(path)
    if index is not None and index.file_size == file_size:
        return index
    index = rebuild_index(path)
    if index is None:
        return None
    telemetry.count("segments.reindexed")
    try:
        _write_index(path, index)
    except OSError:
        pass  # read-only location: serve the in-memory index anyway
    return index


# ------------------------------------------------------------- digests


def segment_digests(path: Union[str, Path]) -> List[str]:
    """Per-segment content digests, from the sidecar index when valid.

    A missing or stale index is rebuilt in passing (one streaming pass);
    only when the data file itself is damaged does this fall back to the
    strict reader, whose error names the damage.
    """
    path = Path(path)
    index = ensure_index(path)
    if index is not None:
        return [s.digest for s in index.segments]
    with open_segmented(path) as reader:
        return [segment.digest for segment in reader.segments()]
