"""Trace well-formedness checks.

``validate(trace)`` raises :class:`TraceError` on the first violation;
``problems(trace)`` returns every violation as a string, for diagnostics.
The transformation pipeline validates its output trace before replaying
it, so a buggy transformation fails loudly instead of producing nonsense
performance numbers.
"""

from __future__ import annotations

from typing import List

from repro.errors import TraceError
from repro.trace.events import (
    ACQUIRE,
    POST,
    RELEASE,
    THREAD_END,
    THREAD_START,
    WAIT,
)
from repro.trace.trace import Trace


def problems(trace: Trace) -> List[str]:
    """Return a list of well-formedness violations (empty when clean)."""
    issues: List[str] = []
    posts = {}
    for event in trace.iter_events():
        if event.kind == POST:
            posts[event.token] = event

    for tid, events in trace.threads.items():
        # A declared-but-empty thread is legal (serialization preserves the
        # declaration), but every event filed under a thread must carry
        # that thread's tid — a mismatch means the container was built by
        # bypassing add_thread/append bookkeeping.
        held = set()
        last_t = -1
        for i, event in enumerate(events):
            if event.tid != tid:
                issues.append(
                    f"{tid}: event {event.uid} filed under wrong thread "
                    f"(tid={event.tid!r})"
                )
            if event.t < last_t:
                issues.append(
                    f"{tid}: event {event.uid} at t={event.t} before t={last_t}"
                )
            last_t = event.t
            if event.kind == THREAD_START and i != 0:
                issues.append(f"{tid}: thread_start not first ({event.uid})")
            if event.kind == THREAD_END and i != len(events) - 1:
                issues.append(f"{tid}: thread_end not last ({event.uid})")
            if event.kind == ACQUIRE:
                if event.lock in held:
                    issues.append(f"{tid}: re-acquired {event.lock} ({event.uid})")
                held.add(event.lock)
            elif event.kind == RELEASE:
                if event.lock not in held:
                    issues.append(
                        f"{tid}: released unheld {event.lock} ({event.uid})"
                    )
                held.discard(event.lock)
            elif event.kind == WAIT:
                if event.reason == "posted" and event.token not in posts:
                    issues.append(
                        f"{tid}: wait {event.uid} references missing post "
                        f"{event.token!r}"
                    )
        if held:
            issues.append(f"{tid}: locks never released: {sorted(held)}")

    for lock, uids in trace.lock_schedule.items():
        seen_uids = {
            e.uid for e in trace.iter_events() if e.kind == ACQUIRE and e.lock == lock
        }
        for uid in uids:
            if uid not in seen_uids:
                issues.append(f"schedule[{lock}]: unknown acquire uid {uid}")
        if len(uids) != len(seen_uids):
            issues.append(
                f"schedule[{lock}]: {len(uids)} scheduled vs "
                f"{len(seen_uids)} recorded acquires"
            )
    return issues


def validate(trace: Trace) -> None:
    """Raise :class:`TraceError` if the trace is malformed."""
    issues = problems(trace)
    if issues:
        raise TraceError("; ".join(issues[:10]))
