"""Trace well-formedness checks.

``validate(trace)`` raises :class:`TraceError` on the first violation;
``problems(trace)`` returns every violation as a string, for diagnostics.
The transformation pipeline validates its output trace before replaying
it, so a buggy transformation fails loudly instead of producing nonsense
performance numbers.

Backend note: for a :class:`~repro.trace.interning.ColumnarTrace` under
the numpy kernel backend, the checks run vectorized over the id columns
(:mod:`repro.kernels.validate_np`); a thread that trips any fast check
falls back to the event-object walk below for the exact message list, so
output is byte-identical either way.
"""

from __future__ import annotations

from time import perf_counter
from typing import List

from repro import kernels
from repro.errors import TraceError
from repro.trace.events import (
    ACQUIRE,
    POST,
    RELEASE,
    THREAD_END,
    THREAD_START,
    WAIT,
)
from repro.trace.trace import Trace


def _thread_problems(tid, events, post_tokens) -> List[str]:
    """One thread's violations, in event order (the reference walk)."""
    issues: List[str] = []
    # A declared-but-empty thread is legal (serialization preserves the
    # declaration), but every event filed under a thread must carry
    # that thread's tid — a mismatch means the container was built by
    # bypassing add_thread/append bookkeeping.
    held = set()
    last_t = -1
    for i, event in enumerate(events):
        if event.tid != tid:
            issues.append(
                f"{tid}: event {event.uid} filed under wrong thread "
                f"(tid={event.tid!r})"
            )
        if event.t < last_t:
            issues.append(
                f"{tid}: event {event.uid} at t={event.t} before t={last_t}"
            )
        last_t = event.t
        if event.kind == THREAD_START and i != 0:
            issues.append(f"{tid}: thread_start not first ({event.uid})")
        if event.kind == THREAD_END and i != len(events) - 1:
            issues.append(f"{tid}: thread_end not last ({event.uid})")
        if event.kind == ACQUIRE:
            if event.lock in held:
                issues.append(f"{tid}: re-acquired {event.lock} ({event.uid})")
            held.add(event.lock)
        elif event.kind == RELEASE:
            if event.lock not in held:
                issues.append(
                    f"{tid}: released unheld {event.lock} ({event.uid})"
                )
            held.discard(event.lock)
        elif event.kind == WAIT:
            if event.reason == "posted" and event.token not in post_tokens:
                issues.append(
                    f"{tid}: wait {event.uid} references missing post "
                    f"{event.token!r}"
                )
    if held:
        issues.append(f"{tid}: locks never released: {sorted(held)}")
    return issues


def _schedule_problems(lock_schedule, acquires_by_lock) -> List[str]:
    """Lock-schedule violations; ``acquires_by_lock`` maps lock -> uid set."""
    issues: List[str] = []
    for lock, uids in lock_schedule.items():
        seen_uids = acquires_by_lock.get(lock, set())
        for uid in uids:
            if uid not in seen_uids:
                issues.append(f"schedule[{lock}]: unknown acquire uid {uid}")
        if len(uids) != len(seen_uids):
            issues.append(
                f"schedule[{lock}]: {len(uids)} scheduled vs "
                f"{len(seen_uids)} recorded acquires"
            )
    return issues


def problems(trace: Trace) -> List[str]:
    """Return a list of well-formedness violations (empty when clean)."""
    start = perf_counter()
    if kernels.use_numpy() and hasattr(trace, "columns"):
        from repro.kernels import validate_np

        issues = validate_np.problems_columnar(trace)
        kernels.record("validate", perf_counter() - start)
        return issues

    post_tokens = set()
    for event in trace.iter_events():
        if event.kind == POST:
            post_tokens.add(event.token)

    issues: List[str] = []
    for tid, events in trace.threads.items():
        issues.extend(_thread_problems(tid, events, post_tokens))

    acquires_by_lock = {}
    for lock in trace.lock_schedule:
        acquires_by_lock[lock] = {
            e.uid for e in trace.iter_events()
            if e.kind == ACQUIRE and e.lock == lock
        }
    issues.extend(_schedule_problems(trace.lock_schedule, acquires_by_lock))
    kernels.record("validate", perf_counter() - start)
    return issues


def validate(trace: Trace) -> None:
    """Raise :class:`TraceError` if the trace is malformed."""
    issues = problems(trace)
    if issues:
        raise TraceError("; ".join(issues[:10]))
