"""Trace substrate: events, code sites, containers, builder, serialization."""

from repro.trace.builder import TraceBuilder
from repro.trace.checkpoint import Checkpoint, slice_from, take_checkpoint
from repro.trace.codesite import CodeRegion, CodeSite
from repro.trace.diff import TraceDiff, diff_traces
from repro.trace.render import render_timeline
from repro.trace.stats import TraceStats, trace_stats
from repro.trace.events import (
    ACQUIRE,
    COMPUTE,
    POST,
    READ,
    RELEASE,
    SLEEP,
    SYNC_KINDS,
    THREAD_END,
    THREAD_START,
    TraceEvent,
    WAIT,
    WRITE,
)
from repro.trace.interning import (
    ColumnarTrace,
    InternTables,
    LazyEvents,
    SymbolTable,
)
from repro.trace.segments import (
    SegmentedReader,
    SegmentedTraceWriter,
    is_segmented_file,
    load_segmented,
    open_segmented,
    write_segmented,
)
from repro.trace.selective import SideTable, StateDelta, diff_snapshots
from repro.trace.serialize import (
    LoadedTrace,
    SalvageReport,
    dump,
    dumps,
    load,
    load_trace,
    loads,
    salvage_read,
)
from repro.trace.trace import Trace, TraceMeta
from repro.trace.validate import problems, validate

__all__ = [
    "Trace",
    "TraceMeta",
    "TraceBuilder",
    "TraceEvent",
    "CodeSite",
    "CodeRegion",
    "Checkpoint",
    "take_checkpoint",
    "slice_from",
    "ColumnarTrace",
    "InternTables",
    "LazyEvents",
    "SymbolTable",
    "SideTable",
    "StateDelta",
    "diff_snapshots",
    "diff_traces",
    "TraceDiff",
    "render_timeline",
    "trace_stats",
    "TraceStats",
    "dump",
    "dumps",
    "load",
    "load_trace",
    "loads",
    "salvage_read",
    "LoadedTrace",
    "SalvageReport",
    "SegmentedReader",
    "SegmentedTraceWriter",
    "is_segmented_file",
    "load_segmented",
    "open_segmented",
    "write_segmented",
    "validate",
    "problems",
    "THREAD_START",
    "THREAD_END",
    "COMPUTE",
    "ACQUIRE",
    "RELEASE",
    "READ",
    "WRITE",
    "WAIT",
    "POST",
    "SLEEP",
    "SYNC_KINDS",
]
