"""Trace comparison: what changed between two traces?

Used when debugging the pipeline itself (did the transformation touch
anything it should not have?) and for regression checks on serialized
traces.  The diff is structural — per-thread event sequences compared by
kind/payload — plus summary-level deltas (event counts, lock schedules,
end times).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.trace.events import TraceEvent
from repro.trace.trace import Trace


@dataclass
class EventDelta:
    """One per-thread position where the traces disagree."""

    tid: str
    index: int
    left: Optional[TraceEvent]
    right: Optional[TraceEvent]

    def describe(self) -> str:
        def show(event):
            if event is None:
                return "<missing>"
            extra = event.lock or event.addr or event.token or ""
            return f"{event.kind}({extra})@{event.t}"

        return f"{self.tid}[{self.index}]: {show(self.left)} != {show(self.right)}"


@dataclass
class TraceDiff:
    """All differences found between two traces."""

    thread_changes: List[str] = field(default_factory=list)
    event_deltas: List[EventDelta] = field(default_factory=list)
    schedule_changes: List[str] = field(default_factory=list)
    summary_changes: List[str] = field(default_factory=list)

    @property
    def identical(self) -> bool:
        return not (
            self.thread_changes
            or self.event_deltas
            or self.schedule_changes
            or self.summary_changes
        )

    def render(self, *, limit: int = 20) -> str:
        if self.identical:
            return "traces are identical"
        lines: List[str] = []
        lines.extend(self.thread_changes)
        lines.extend(self.schedule_changes)
        lines.extend(self.summary_changes)
        for delta in self.event_deltas[:limit]:
            lines.append(delta.describe())
        if len(self.event_deltas) > limit:
            lines.append(f"... and {len(self.event_deltas) - limit} more event deltas")
        return "\n".join(lines)


def _events_equal(left: TraceEvent, right: TraceEvent) -> bool:
    return left.encode() == right.encode()


def diff_traces(left: Trace, right: Trace, *, ignore_times: bool = False) -> TraceDiff:
    """Compare two traces; ``ignore_times`` masks timestamp-only changes."""
    result = TraceDiff()

    left_tids = set(left.threads)
    right_tids = set(right.threads)
    for tid in sorted(left_tids - right_tids):
        result.thread_changes.append(f"thread {tid} only in left trace")
    for tid in sorted(right_tids - left_tids):
        result.thread_changes.append(f"thread {tid} only in right trace")

    def key(event: TraceEvent) -> dict:
        data = event.encode()
        if ignore_times:
            data.pop("t", None)
            data.pop("t_request", None)
            data.pop("duration", None)
        return data

    for tid in sorted(left_tids & right_tids):
        a = left.threads[tid]
        b = right.threads[tid]
        for i in range(max(len(a), len(b))):
            ea = a[i] if i < len(a) else None
            eb = b[i] if i < len(b) else None
            if ea is None or eb is None or key(ea) != key(eb):
                result.event_deltas.append(
                    EventDelta(tid=tid, index=i, left=ea, right=eb)
                )

    for lock in sorted(set(left.lock_schedule) | set(right.lock_schedule)):
        a = left.lock_schedule.get(lock)
        b = right.lock_schedule.get(lock)
        if a != b:
            result.schedule_changes.append(
                f"lock schedule for {lock}: {len(a or [])} vs {len(b or [])} "
                f"acquisitions"
                + ("" if (a or []) == (b or []) else " (order/content differ)")
            )

    if not ignore_times and left.end_time != right.end_time:
        result.summary_changes.append(
            f"end time: {left.end_time} vs {right.end_time}"
        )
    return result
