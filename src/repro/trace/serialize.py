"""JSONL (de)serialization of traces, plain or gzip-compressed.

Format — one JSON object per line:

1. ``{"meta": ...}`` — the recording parameters,
2. ``{"lock_schedule": ...}`` — the per-lock acquire-uid grant order,
3. ``{"threads": [...], "events": N}`` — the declared thread ids (in
   creation order, empty threads included) and the total event count,
4. optionally ``{"side": ...}`` — the selective-recording side table,
5. optionally ``{"symbols": ...}`` — the intern tables of the columnar
   core (:mod:`repro.trace.interning`): tid/lock/address strings in
   canonical first-appearance order, so interned ids are stable across a
   serialization round-trip.  A line is a side table / symbol table only
   when the object's *single* key is ``"side"`` / ``"symbols"``; any
   other shape is an event,
6. every subsequent line is one event, thread by thread, in per-thread
   record order.

Both directions stream: :func:`write_trace` emits line by line into any
text file object and :func:`read_trace` consumes an iterable of lines,
so a multi-hundred-MB trace never has to materialize as one string.
Paths ending in ``.gz`` (the ``.jsonl.gz`` trace format) are transparently
gzip-compressed with deterministic output (``mtime=0``).

Every event's ``tid`` must name a declared thread: an undeclared tid
raises :class:`TraceError` instead of silently growing the thread table.
The ``"events"`` count lets the reader detect a truncated body.

Salvage mode (:func:`load_trace` / :func:`salvage_read` with
``salvage=True``) recovers the longest well-formed prefix of a
truncated or corrupted trace instead of raising: parsing stops at the
first unreadable or malformed line, trailing events inside unfinished
critical sections are trimmed so the prefix stays replayable, the lock
schedule is pruned to the acquires that survived, and everything that
was dropped is reported in a :class:`SalvageReport` (plus a
:class:`repro.errors.SalvageWarning`).  Only the three header lines are
unrecoverable — without the meta there is no trace to salvage.
"""

from __future__ import annotations

import gzip
import io
import json
import os
import warnings
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Iterable, Iterator, List, Optional, Union

from repro import faults
from repro.chaos.points import crash_point
from repro.errors import SalvageWarning, TraceError
from repro.trace.events import ACQUIRE, POST, RELEASE, WAIT, TraceEvent
from repro.trace.interning import InternTables
from repro.trace.selective import SideTable
from repro.trace.trace import Trace, TraceMeta


def write_trace(trace: Trace, out: IO[str]) -> None:
    """Stream a trace into ``out`` (any text file object), line by line."""
    from repro.trace.interning import canonical_tables

    out.write(json.dumps({"meta": trace.meta.encode()}) + "\n")
    out.write(json.dumps({"lock_schedule": trace.lock_schedule}) + "\n")
    out.write(
        json.dumps({"threads": list(trace.threads), "events": len(trace)}) + "\n"
    )
    if trace.side.deltas:
        out.write(json.dumps({"side": trace.side.encode()}) + "\n")
    # Always derived canonically (never the attached table verbatim), so
    # the bytes depend only on trace content, not on analysis history.
    out.write(json.dumps({"symbols": canonical_tables(trace).encode()}) + "\n")
    # Time order (not thread-by-thread): a truncated file then holds a
    # prefix of the *execution*, so salvage-mode loading recovers every
    # thread up to the damage instead of losing whole threads.
    for event in trace.iter_time_order():
        out.write(json.dumps(event.encode()) + "\n")


def read_trace(lines: Iterable[str]) -> Trace:
    """Build a trace from an iterable of JSONL lines (streaming).

    Raises :class:`TraceError` on malformed JSON, missing headers, a
    malformed side-table line, an event whose tid was not declared in the
    ``{"threads": ...}`` header, or a truncated body (fewer events than
    the header's ``"events"`` count).
    """
    stream: Iterator[dict] = _parse_lines(lines)
    try:
        header = next(stream)
        schedule = next(stream)
        threads = next(stream)
    except StopIteration:
        raise TraceError("truncated trace: missing header lines") from None
    if "meta" not in header or "lock_schedule" not in schedule:
        raise TraceError("malformed trace header")
    trace = Trace(TraceMeta.decode(header["meta"]))
    for tid in threads.get("threads", []):
        trace.add_thread(tid)
    expected_events = threads.get("events")

    seen_events = 0
    header_zone = True
    for data in stream:
        if header_zone:
            # A side/symbol table is exactly the single-key object
            # {"side": ...} / {"symbols": ...}.  Events always carry
            # uid/tid/kind/t, so shape disambiguates even if an event
            # payload ever contains one of these keys.
            if set(data) == {"side"}:
                try:
                    trace.side = SideTable.decode(data["side"])
                except (TypeError, AttributeError, KeyError) as exc:
                    raise TraceError(f"malformed side table: {exc}") from None
                continue
            if set(data) == {"symbols"}:
                try:
                    trace.symbols = InternTables.decode(data["symbols"])
                except (TypeError, AttributeError, KeyError) as exc:
                    raise TraceError(f"malformed symbol table: {exc}") from None
                continue
            header_zone = False
        try:
            event = TraceEvent.decode(data)
        except (KeyError, TypeError) as exc:
            raise TraceError(f"malformed event line: {exc}") from None
        if event.tid not in trace.threads:
            raise TraceError(
                f"event {event.uid} references undeclared thread {event.tid!r}"
            )
        # append() would re-derive the lock schedule; bypass it and install
        # the recorded schedule verbatim below.
        trace.threads[event.tid].append(event)
        seen_events += 1
    if expected_events is not None and seen_events != expected_events:
        raise TraceError(
            f"truncated trace body: {seen_events} of {expected_events} events"
        )
    trace.lock_schedule = {
        lock: list(uids) for lock, uids in schedule["lock_schedule"].items()
    }
    return trace


def _parse_lines(lines: Iterable[str]) -> Iterator[dict]:
    for line in lines:
        if not line.strip():
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceError(f"malformed trace line: {exc}") from None
        if not isinstance(data, dict):
            raise TraceError(f"malformed trace line: expected object, got {data!r}")
        yield data


# ----------------------------------------------------------------- salvage


@dataclass
class SalvageReport:
    """What salvage-mode loading kept, dropped, and repaired."""

    source: Optional[str]
    kept_events: int
    expected_events: Optional[int]
    #: header-count shortfall (``None`` when the header count was missing)
    dropped_events: Optional[int]
    #: events removed to close unfinished critical sections
    trimmed_events: int
    #: lock-schedule grant entries whose acquires did not survive
    pruned_schedule: int
    #: what stopped the scan ("" when the stream ended cleanly)
    stopped_reason: str
    #: residual well-formedness issues of the salvaged prefix
    problems: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return (
            not self.stopped_reason
            and not self.dropped_events
            and not self.trimmed_events
            and not self.pruned_schedule
            and not self.problems
        )

    def render(self) -> str:
        if self.clean:
            return f"trace intact: {self.kept_events} events"
        expected = (
            str(self.expected_events) if self.expected_events is not None else "?"
        )
        parts = [f"kept {self.kept_events} of {expected} events"]
        if self.trimmed_events:
            parts.append(f"trimmed {self.trimmed_events} unfinished")
        if self.pruned_schedule:
            parts.append(f"pruned {self.pruned_schedule} schedule grants")
        if self.stopped_reason:
            parts.append(f"stopped at: {self.stopped_reason}")
        if self.problems:
            parts.append(f"{len(self.problems)} residual problem(s)")
        return "; ".join(parts)


@dataclass
class LoadedTrace:
    """A loaded trace plus the salvage report (``None`` for strict loads)."""

    trace: Trace
    report: Optional[SalvageReport] = None


def salvage_read(lines: Iterable[str], *, source=None) -> LoadedTrace:
    """Best-effort streaming read: the longest well-formed prefix.

    Raises :class:`TraceError` only when the three header lines are
    unreadable; any later damage truncates the result instead.
    """
    stop = {"reason": ""}

    def tolerant() -> Iterator[dict]:
        iterator = iter(lines)
        while True:
            try:
                line = next(iterator)
            except StopIteration:
                return
            except (EOFError, OSError, UnicodeDecodeError, zlib.error) as exc:
                # zlib.error is NOT an OSError: a flipped bit inside the
                # deflate stream raises it from gzip reads, and without
                # this clause it would escape salvage mode entirely
                stop["reason"] = f"unreadable tail: {exc}"
                return
            if not line.strip():
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                stop["reason"] = f"malformed line: {exc}"
                return
            if not isinstance(data, dict):
                stop["reason"] = f"non-object line: {data!r}"
                return
            yield data

    stream = tolerant()
    try:
        header = next(stream)
        schedule = next(stream)
        threads = next(stream)
    except StopIteration:
        reason = f" ({stop['reason']})" if stop["reason"] else ""
        raise TraceError(
            f"unsalvageable trace: missing header lines{reason}"
        ) from None
    if "meta" not in header or "lock_schedule" not in schedule:
        raise TraceError("unsalvageable trace: malformed header")
    trace = Trace(TraceMeta.decode(header["meta"]))
    for tid in threads.get("threads", []):
        trace.add_thread(tid)
    expected_events = threads.get("events")

    seen_events = 0
    header_zone = True
    for data in stream:
        if header_zone:
            if set(data) == {"side"}:
                try:
                    trace.side = SideTable.decode(data["side"])
                except (TypeError, AttributeError, KeyError) as exc:
                    stop["reason"] = f"malformed side table: {exc}"
                    break
                continue
            if set(data) == {"symbols"}:
                try:
                    trace.symbols = InternTables.decode(data["symbols"])
                except (TypeError, AttributeError, KeyError) as exc:
                    # symbols are an acceleration hint, not trace content:
                    # drop them and keep salvaging events
                    trace.symbols = None
                continue
            header_zone = False
        try:
            event = TraceEvent.decode(data)
        except (KeyError, TypeError) as exc:
            stop["reason"] = f"malformed event line: {exc}"
            break
        if event.tid not in trace.threads:
            stop["reason"] = f"event references undeclared thread {event.tid!r}"
            break
        trace.threads[event.tid].append(event)
        seen_events += 1

    return finish_salvage(
        trace,
        schedule["lock_schedule"],
        expected_events=expected_events if isinstance(expected_events, int) else None,
        seen_events=seen_events,
        stop_reason=stop["reason"],
        source=source,
    )


def finish_salvage(
    trace: Trace,
    schedule: dict,
    *,
    expected_events: Optional[int],
    seen_events: int,
    stop_reason: str,
    source=None,
) -> LoadedTrace:
    """Shared salvage epilogue: trim, prune, report, warn.

    Both the monolithic (:func:`salvage_read`) and the segmented
    (:func:`repro.trace.segments.salvage_segmented`) salvage paths end
    here, so the replayability trim and the report/telemetry/warning
    behavior stay identical across formats.
    """
    trimmed = _trim_unfinished_sections(trace)
    pruned = _prune_schedule(trace, schedule)
    from repro.trace.validate import problems as _trace_problems

    dropped = None
    if isinstance(expected_events, int):
        dropped = max(0, expected_events - seen_events)
    report = SalvageReport(
        source=str(source) if source is not None else None,
        kept_events=len(trace),
        expected_events=expected_events,
        dropped_events=dropped,
        trimmed_events=trimmed,
        pruned_schedule=pruned,
        stopped_reason=stop_reason,
        problems=_trace_problems(trace),
    )
    from repro import log, telemetry

    telemetry.count("salvage.loads")
    lost = (report.dropped_events or 0) + report.trimmed_events
    if lost:
        telemetry.count("salvage.events_dropped", lost)
    if not report.clean:
        # structured INFO event for grepping; user-facing severity stays
        # with the stdlib SalvageWarning (and the CLI's warning line)
        log.get_logger("trace.salvage").info(
            "salvaged %s: %s",
            report.source or "<stream>", report.render(),
            extra={
                "event": "trace.salvage",
                "source": report.source or "",
                "kept_events": report.kept_events,
                "dropped_events": report.dropped_events or 0,
                "trimmed_events": report.trimmed_events,
            },
        )
        warnings.warn(SalvageWarning(report.render()), stacklevel=2)
    return LoadedTrace(trace=trace, report=report)


def _trim_unfinished_sections(trace: Trace) -> int:
    """Drop each thread's tail past its last replayable point.

    A truncated trace typically cuts a thread mid-critical-section, or
    drops the POST half of a wait/post pairing; a replay of such a
    prefix would end with the lock still held or a waiter starving
    forever.  Each thread keeps only the longest prefix in which every
    acquire has been released and every wait's token is still posted
    somewhere in the surviving trace.  Cutting one thread can orphan a
    wait in another (its POST was in the cut tail), so iterate to a
    fixpoint; every pass only shrinks, so termination is guaranteed.
    """
    trimmed = 0
    changed = True
    while changed:
        changed = False
        for events in trace.threads.values():
            held = set()
            balanced = 0
            for i, event in enumerate(events):
                if event.kind == ACQUIRE:
                    held.add(event.lock)
                elif event.kind == RELEASE:
                    held.discard(event.lock)
                if not held:
                    balanced = i + 1
            if held:
                trimmed += len(events) - balanced
                del events[balanced:]
                changed = True
        posted = {
            event.token
            for events in trace.threads.values()
            for event in events
            if event.kind == POST and event.token
        }
        for events in trace.threads.values():
            for i, event in enumerate(events):
                if event.kind == WAIT and event.token and event.token not in posted:
                    trimmed += len(events) - i
                    del events[i:]
                    changed = True
                    break
    return trimmed


def _prune_schedule(trace: Trace, schedule: dict) -> int:
    """Install the recorded schedule minus grants for dropped acquires."""
    present = {e.uid for e in trace.iter_events() if e.kind == ACQUIRE}
    pruned = 0
    kept = {}
    for lock, uids in schedule.items():
        surviving = [uid for uid in uids if uid in present]
        pruned += len(uids) - len(surviving)
        if surviving:
            kept[lock] = surviving
    trace.lock_schedule = kept
    return pruned


def dumps(trace: Trace) -> str:
    """Serialize a trace to a JSONL string (thin wrapper over the writer)."""
    out = io.StringIO()
    write_trace(trace, out)
    return out.getvalue()


def loads(text: str) -> Trace:
    """Deserialize a trace from a JSONL string."""
    return read_trace(text.splitlines())


_GZIP_MAGIC = b"\x1f\x8b"


def _is_gzip(path: Path) -> bool:
    """Suffix-based container choice — authoritative only for *writes*."""
    return path.suffix == ".gz"


def _check_container(path: Path) -> bool:
    """Decide gzip-ness of an existing file by its magic bytes.

    The ``.gz`` suffix and the 2-byte gzip magic must agree; a mismatch
    in either direction raises a :class:`TraceError` naming it, instead
    of the confusing decode error (or silent mojibake) that trusting the
    suffix alone produced.  Returns whether the file is gzip.
    """
    with open(path, "rb") as probe:
        magic = probe.read(2)
    named_gz = _is_gzip(path)
    is_gz = magic == _GZIP_MAGIC
    if named_gz and not is_gz:
        raise TraceError(
            f"{path} is named *.gz but does not start with the gzip magic "
            f"bytes (got {magic!r}) — not a gzip file"
        )
    if is_gz and not named_gz:
        raise TraceError(
            f"{path} starts with the gzip magic bytes but is not named "
            f"*.gz — rename it to *.gz (or decompress it) so the format "
            f"is unambiguous"
        )
    return is_gz


def dump(trace: Trace, path: Union[str, Path]) -> None:
    """Write a trace to a file, streaming (gzip when the path ends in .gz).

    The write is atomic: bytes go to a same-directory temp file first and
    ``os.replace`` installs them only once the stream is complete, so a
    crash (or fault-injected kill) mid-write leaves either the old file
    or the new one — never a torn trace.  The temp name keeps the full
    target name (``.tmp-<pid>-<name>``) so the ``.gz`` suffix still picks
    the gzip writer.
    """
    path = Path(path)
    tmp = path.with_name(f".tmp-{os.getpid()}-{path.name}")
    try:
        if _is_gzip(tmp):
            # mtime=0 and an empty embedded filename keep the compressed
            # bytes deterministic per content (same trace -> same file bytes)
            with open(tmp, "wb") as raw:
                with gzip.GzipFile(
                    filename="", fileobj=raw, mode="wb", mtime=0
                ) as binary:
                    with io.TextIOWrapper(binary, encoding="utf-8") as out:
                        write_trace(trace, out)
        else:
            with open(tmp, "w", encoding="utf-8") as out:
                write_trace(trace, out)
        crash_point("trace.dump")
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
    if faults.enabled():
        if faults.fires("trace.truncate", key=str(path)):
            faults.corrupt_file(path, "truncate")
        if faults.fires("trace.bitflip", key=str(path)):
            faults.corrupt_file(path, "bitflip")


def _gzip_lines(path: Path, *, errors: str = "strict") -> Iterator[str]:
    """Line iterator over a gzip file that keeps decode failures tame.

    ``zlib.error`` (raised for damage *inside* a deflate stream, and not
    an ``OSError``) is converted to ``EOFError`` so consumers see every
    flavor of gzip-layer damage through one exception family: the decoded
    prefix has already been yielded, which is exactly what salvage needs.
    """
    with gzip.open(path, "rt", encoding="utf-8", errors=errors) as handle:
        try:
            yield from handle
        except zlib.error as exc:
            raise EOFError(f"gzip stream damaged: {exc}") from None


def load(path: Union[str, Path]) -> Trace:
    """Read a trace from a file, streaming; dispatches on content.

    Handles both formats: monolithic JSONL (plain or gzip, picked by the
    magic bytes — see :func:`_check_container`) and the segmented format
    of :mod:`repro.trace.segments` (fully materialized here; use the
    segment readers for bounded-memory access).
    """
    from repro.trace import segments as _segments

    path = Path(path)
    is_gz = _check_container(path)
    if _segments.is_segmented_file(path):
        return _segments.load_segmented(path)
    if is_gz:
        try:
            with gzip.open(path, "rt", encoding="utf-8") as handle:
                return read_trace(handle)
        except (EOFError, gzip.BadGzipFile, zlib.error) as exc:
            raise TraceError(f"corrupt gzip trace file {path}: {exc}") from None
    with open(path, "r", encoding="utf-8") as handle:
        return read_trace(handle)


def load_trace(path: Union[str, Path], *, salvage: bool = False) -> LoadedTrace:
    """Read a trace from a file, optionally salvaging a damaged one.

    Strict mode (the default) behaves exactly like :func:`load` (any
    damage raises :class:`TraceError`) and carries no report.  With
    ``salvage=True`` the longest well-formed prefix is recovered —
    segment-granular for segmented files, line-granular for monolithic
    ones — and the attached :class:`SalvageReport` says what was dropped.
    """
    from repro.trace import segments as _segments

    path = Path(path)
    if not salvage:
        return LoadedTrace(trace=load(path))
    is_gz = _check_container(path)
    if _segments.is_segmented_file(path):
        return _segments.salvage_segmented(path)
    if is_gz:
        return salvage_read(_gzip_lines(path, errors="replace"), source=path)
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        return salvage_read(handle, source=path)
