"""JSONL (de)serialization of traces.

Format: the first line is the metadata object (``{"meta": ...}``), the
second is the lock schedule (``{"lock_schedule": ...}``), and every
subsequent line is one event in per-thread record order, interleaved in
the order events were appended during recording.
"""

from __future__ import annotations

import io
import json
from pathlib import Path
from typing import Union

from repro.errors import TraceError
from repro.trace.events import TraceEvent
from repro.trace.selective import SideTable
from repro.trace.trace import Trace, TraceMeta


def dumps(trace: Trace) -> str:
    """Serialize a trace to a JSONL string."""
    out = io.StringIO()
    out.write(json.dumps({"meta": trace.meta.encode()}) + "\n")
    out.write(json.dumps({"lock_schedule": trace.lock_schedule}) + "\n")
    out.write(json.dumps({"threads": list(trace.threads)}) + "\n")
    if trace.side.deltas:
        out.write(json.dumps({"side": trace.side.encode()}) + "\n")
    for event in trace.iter_events():
        out.write(json.dumps(event.encode()) + "\n")
    return out.getvalue()


def loads(text: str) -> Trace:
    """Deserialize a trace from a JSONL string."""
    lines = [line for line in text.splitlines() if line.strip()]
    if len(lines) < 3:
        raise TraceError("truncated trace: missing header lines")
    header = json.loads(lines[0])
    schedule = json.loads(lines[1])
    threads = json.loads(lines[2])
    if "meta" not in header or "lock_schedule" not in schedule:
        raise TraceError("malformed trace header")
    trace = Trace(TraceMeta.decode(header["meta"]))
    for tid in threads.get("threads", []):
        trace.add_thread(tid)
    body_lines = lines[3:]
    if body_lines and "side" in json.loads(body_lines[0]):
        trace.side = SideTable.decode(json.loads(body_lines[0])["side"])
        body_lines = body_lines[1:]
    for line in body_lines:
        event = TraceEvent.decode(json.loads(line))
        # append() would re-derive the lock schedule; bypass it and install
        # the recorded schedule verbatim below.
        trace.threads.setdefault(event.tid, []).append(event)
    trace.lock_schedule = {
        lock: list(uids) for lock, uids in schedule["lock_schedule"].items()
    }
    return trace


def dump(trace: Trace, path: Union[str, Path]) -> None:
    """Write a trace to a file."""
    Path(path).write_text(dumps(trace), encoding="utf-8")


def load(path: Union[str, Path]) -> Trace:
    """Read a trace from a file."""
    return loads(Path(path).read_text(encoding="utf-8"))
