"""JSONL (de)serialization of traces, plain or gzip-compressed.

Format — one JSON object per line:

1. ``{"meta": ...}`` — the recording parameters,
2. ``{"lock_schedule": ...}`` — the per-lock acquire-uid grant order,
3. ``{"threads": [...], "events": N}`` — the declared thread ids (in
   creation order, empty threads included) and the total event count,
4. optionally ``{"side": ...}`` — the selective-recording side table.
   The line is a side table only when the object's *single* key is
   ``"side"``; any other shape is an event,
5. every subsequent line is one event, thread by thread, in per-thread
   record order.

Both directions stream: :func:`write_trace` emits line by line into any
text file object and :func:`read_trace` consumes an iterable of lines,
so a multi-hundred-MB trace never has to materialize as one string.
Paths ending in ``.gz`` (the ``.jsonl.gz`` trace format) are transparently
gzip-compressed with deterministic output (``mtime=0``).

Every event's ``tid`` must name a declared thread: an undeclared tid
raises :class:`TraceError` instead of silently growing the thread table.
The ``"events"`` count lets the reader detect a truncated body.
"""

from __future__ import annotations

import gzip
import io
import json
from pathlib import Path
from typing import IO, Iterable, Iterator, Union

from repro.errors import TraceError
from repro.trace.events import TraceEvent
from repro.trace.selective import SideTable
from repro.trace.trace import Trace, TraceMeta


def write_trace(trace: Trace, out: IO[str]) -> None:
    """Stream a trace into ``out`` (any text file object), line by line."""
    out.write(json.dumps({"meta": trace.meta.encode()}) + "\n")
    out.write(json.dumps({"lock_schedule": trace.lock_schedule}) + "\n")
    out.write(
        json.dumps({"threads": list(trace.threads), "events": len(trace)}) + "\n"
    )
    if trace.side.deltas:
        out.write(json.dumps({"side": trace.side.encode()}) + "\n")
    for event in trace.iter_events():
        out.write(json.dumps(event.encode()) + "\n")


def read_trace(lines: Iterable[str]) -> Trace:
    """Build a trace from an iterable of JSONL lines (streaming).

    Raises :class:`TraceError` on malformed JSON, missing headers, a
    malformed side-table line, an event whose tid was not declared in the
    ``{"threads": ...}`` header, or a truncated body (fewer events than
    the header's ``"events"`` count).
    """
    stream: Iterator[dict] = _parse_lines(lines)
    try:
        header = next(stream)
        schedule = next(stream)
        threads = next(stream)
    except StopIteration:
        raise TraceError("truncated trace: missing header lines") from None
    if "meta" not in header or "lock_schedule" not in schedule:
        raise TraceError("malformed trace header")
    trace = Trace(TraceMeta.decode(header["meta"]))
    for tid in threads.get("threads", []):
        trace.add_thread(tid)
    expected_events = threads.get("events")

    seen_events = 0
    first_body = True
    for data in stream:
        if first_body:
            first_body = False
            # A side table is exactly the single-key object {"side": ...}.
            # Events always carry uid/tid/kind/t, so shape disambiguates
            # even if an event payload ever contains a "side" key.
            if set(data) == {"side"}:
                try:
                    trace.side = SideTable.decode(data["side"])
                except (TypeError, AttributeError, KeyError) as exc:
                    raise TraceError(f"malformed side table: {exc}") from None
                continue
        try:
            event = TraceEvent.decode(data)
        except (KeyError, TypeError) as exc:
            raise TraceError(f"malformed event line: {exc}") from None
        if event.tid not in trace.threads:
            raise TraceError(
                f"event {event.uid} references undeclared thread {event.tid!r}"
            )
        # append() would re-derive the lock schedule; bypass it and install
        # the recorded schedule verbatim below.
        trace.threads[event.tid].append(event)
        seen_events += 1
    if expected_events is not None and seen_events != expected_events:
        raise TraceError(
            f"truncated trace body: {seen_events} of {expected_events} events"
        )
    trace.lock_schedule = {
        lock: list(uids) for lock, uids in schedule["lock_schedule"].items()
    }
    return trace


def _parse_lines(lines: Iterable[str]) -> Iterator[dict]:
    for line in lines:
        if not line.strip():
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceError(f"malformed trace line: {exc}") from None
        if not isinstance(data, dict):
            raise TraceError(f"malformed trace line: expected object, got {data!r}")
        yield data


def dumps(trace: Trace) -> str:
    """Serialize a trace to a JSONL string (thin wrapper over the writer)."""
    out = io.StringIO()
    write_trace(trace, out)
    return out.getvalue()


def loads(text: str) -> Trace:
    """Deserialize a trace from a JSONL string."""
    return read_trace(text.splitlines())


def _is_gzip(path: Path) -> bool:
    return path.suffix == ".gz"


def dump(trace: Trace, path: Union[str, Path]) -> None:
    """Write a trace to a file, streaming (gzip when the path ends in .gz)."""
    path = Path(path)
    if _is_gzip(path):
        # mtime=0 and an empty embedded filename keep the compressed
        # bytes deterministic per content (same trace -> same file bytes)
        with open(path, "wb") as raw:
            with gzip.GzipFile(filename="", fileobj=raw, mode="wb", mtime=0) as binary:
                with io.TextIOWrapper(binary, encoding="utf-8") as out:
                    write_trace(trace, out)
    else:
        with open(path, "w", encoding="utf-8") as out:
            write_trace(trace, out)


def load(path: Union[str, Path]) -> Trace:
    """Read a trace from a file, streaming (gzip when the path ends in .gz)."""
    path = Path(path)
    if _is_gzip(path):
        try:
            with gzip.open(path, "rt", encoding="utf-8") as handle:
                return read_trace(handle)
        except (EOFError, gzip.BadGzipFile) as exc:
            raise TraceError(f"corrupt gzip trace file {path}: {exc}") from None
    with open(path, "r", encoding="utf-8") as handle:
        return read_trace(handle)
