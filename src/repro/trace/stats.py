"""Trace statistics: a structural summary of a recorded execution.

Answers the first questions one asks of an unfamiliar trace — how many
events of each kind, how busy each thread is, how synchronization-dense
the execution is — before any ULCP analysis runs.  Exposed on the CLI
as ``python -m repro stats <trace>``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List

from repro.trace.events import (
    ACQUIRE,
    COMPUTE,
    POST,
    READ,
    RELEASE,
    SLEEP,
    WAIT,
    WRITE,
)
from repro.trace.trace import Trace


@dataclass
class ThreadSummary:
    tid: str
    events: int = 0
    compute_ns: int = 0
    acquisitions: int = 0
    contended: int = 0
    wait_ns: int = 0
    reads: int = 0
    writes: int = 0

    @property
    def sync_density(self) -> float:
        """Lock operations per event."""
        return self.acquisitions / self.events if self.events else 0.0


@dataclass
class TraceStats:
    total_events: int
    end_time: int
    kinds: Counter = field(default_factory=Counter)
    threads: Dict[str, ThreadSummary] = field(default_factory=dict)
    locks: int = 0
    shared_addresses: int = 0

    @property
    def contention_rate(self) -> float:
        acquisitions = sum(t.acquisitions for t in self.threads.values())
        contended = sum(t.contended for t in self.threads.values())
        return contended / acquisitions if acquisitions else 0.0

    def render(self) -> str:
        lines = [
            f"events={self.total_events}  end={self.end_time}ns  "
            f"locks={self.locks}  shared addrs={self.shared_addresses}  "
            f"contended acquires={self.contention_rate:.0%}",
            # tie order pinned to the kind name: Counter.most_common breaks
            # ties by insertion order, which differs between the
            # thread-by-thread and the segment-streaming walks
            "kinds: " + "  ".join(
                f"{kind}={count}"
                for kind, count in sorted(
                    self.kinds.items(), key=lambda item: (-item[1], item[0])
                )
            ),
            f"{'thread':12} {'events':>7} {'compute':>9} {'acq':>5} "
            f"{'cont':>5} {'wait(ns)':>9} {'rd':>5} {'wr':>5}",
        ]
        for summary in self.threads.values():
            lines.append(
                f"{summary.tid:12} {summary.events:>7} {summary.compute_ns:>9} "
                f"{summary.acquisitions:>5} {summary.contended:>5} "
                f"{summary.wait_ns:>9} {summary.reads:>5} {summary.writes:>5}"
            )
        return "\n".join(lines)


def trace_stats(trace: Trace) -> TraceStats:
    """Compute the structural summary of a trace."""
    from repro.analysis.shadow import shared_addresses

    stats = TraceStats(total_events=len(trace), end_time=trace.end_time)
    for tid, events in trace.threads.items():
        summary = stats.threads.setdefault(tid, ThreadSummary(tid=tid))
        for event in events:
            stats.kinds[event.kind] += 1
            summary.events += 1
            if event.kind == COMPUTE:
                summary.compute_ns += event.duration
            elif event.kind == ACQUIRE:
                summary.acquisitions += 1
                wait = event.wait_time
                if wait > 0:
                    summary.contended += 1
                    summary.wait_ns += wait
            elif event.kind == READ:
                summary.reads += 1
            elif event.kind == WRITE:
                summary.writes += 1
            elif event.kind in (WAIT, SLEEP):
                summary.wait_ns += event.duration
    stats.locks = len(trace.lock_schedule)
    stats.shared_addresses = len(shared_addresses(trace))
    return stats


def stats_segments(reader) -> TraceStats:
    """:func:`trace_stats` over a segment stream, in bounded memory.

    ``reader`` is a fresh :class:`repro.trace.segments.SegmentedReader`;
    one strict pass over its segments fills the same counters straight
    from the columnar chunks (no :class:`TraceEvent` materialization).
    Output is equal — rendered and as JSON — to ``trace_stats`` over the
    fully-loaded trace.
    """
    from repro.trace.interning import (
        ACQUIRE_CODE,
        COMPUTE_CODE,
        READ_CODE,
        SLEEP_CODE,
        WAIT_CODE,
        WRITE_CODE,
    )

    stats = TraceStats(total_events=0, end_time=0)
    for tid in reader.threads:
        stats.threads[tid] = ThreadSummary(tid=tid)
    kind_name = reader.tables.kinds.name
    first_toucher: Dict[int, str] = {}
    shared_count = 0
    # a thread's end is its *last recorded* event's t (record order), not
    # its max t — track per thread, chunks arrive in record order
    last_t: Dict[str, int] = {}

    for segment in reader.segments():
        for chunk in segment.chunks:
            tid = chunk.tid
            summary = stats.threads[tid]
            column = chunk.column
            kinds = column.kind
            n = len(kinds)
            stats.total_events += n
            summary.events += n
            if n:
                last_t[tid] = column.t[-1]
            for i in range(n):
                code = kinds[i]
                stats.kinds[kind_name(code)] += 1
                if code == COMPUTE_CODE:
                    summary.compute_ns += column.duration[i]
                elif code == ACQUIRE_CODE:
                    summary.acquisitions += 1
                    wait = column.t[i] - column.t_request[i]
                    if wait > 0:
                        summary.contended += 1
                        summary.wait_ns += wait
                elif code == READ_CODE or code == WRITE_CODE:
                    if code == READ_CODE:
                        summary.reads += 1
                    else:
                        summary.writes += 1
                    aid = column.addr_id[i]
                    if first_toucher.setdefault(aid, tid) != tid:
                        if first_toucher[aid] != "":
                            first_toucher[aid] = ""  # marks: already shared
                            shared_count += 1
                elif code == WAIT_CODE or code == SLEEP_CODE:
                    summary.wait_ns += column.duration[i]
    stats.end_time = max(last_t.values(), default=0)
    stats.locks = len(reader.lock_schedule)
    stats.shared_addresses = shared_count
    return stats

