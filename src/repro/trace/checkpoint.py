"""Checkpoints: restartable positions inside a recorded trace.

The paper supports checkpoints so programmers can re-debug a smaller code
region repeatedly (§5.1).  A checkpoint captures, at a chosen simulated
time, the memory snapshot and each thread's position (index into its event
list); ``slice_from`` produces the suffix trace that replays from there.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict

from repro.trace.trace import Trace, TraceMeta


@dataclass
class Checkpoint:
    """A resumable point in a recorded execution."""

    t: int
    memory: Dict[str, int] = field(default_factory=dict)
    positions: Dict[str, int] = field(default_factory=dict)

    def encode(self) -> dict:
        return {"t": self.t, "memory": dict(self.memory), "positions": dict(self.positions)}

    @staticmethod
    def decode(data: dict) -> "Checkpoint":
        return Checkpoint(
            t=data["t"],
            memory=dict(data["memory"]),
            positions={k: int(v) for k, v in data["positions"].items()},
        )


def take_checkpoint(trace: Trace, t: int) -> Checkpoint:
    """Checkpoint ``trace`` at simulated time ``t``.

    Memory contents are reconstructed by folding every write with
    timestamp <= t, in time order.  Per-thread positions snap *backwards*
    out of any critical section that is still open at ``t``, so the
    suffix trace always contains balanced acquire/release pairs (a thread
    cannot resume mid-section).
    """
    memory: Dict[str, int] = {}
    for event in trace.iter_time_order():
        if event.t <= t and event.kind == "write":
            memory[event.addr] = event.value
    positions = {}
    for tid, events in trace.threads.items():
        idx = 0
        while idx < len(events) and events[idx].t <= t:
            idx += 1
        # snap out of open critical sections: rewind to the earliest
        # acquire that has no matching release before idx
        open_acquires: Dict[str, int] = {}
        for i in range(idx):
            event = events[i]
            if event.kind == "acquire":
                open_acquires[event.lock] = i
            elif event.kind == "release":
                open_acquires.pop(event.lock, None)
        if open_acquires:
            idx = min(open_acquires.values())
        positions[tid] = idx
    return Checkpoint(t=t, memory=memory, positions=positions)


def slice_from(trace: Trace, checkpoint: Checkpoint) -> Trace:
    """The suffix of ``trace`` starting at ``checkpoint``.

    Timestamps are rebased to the checkpoint time; the lock schedule keeps
    only acquires that survive the slice, in their original order.
    """
    sliced = Trace(
        TraceMeta(
            name=trace.meta.name + "@checkpoint",
            seed=trace.meta.seed,
            num_cores=trace.meta.num_cores,
            lock_cost=trace.meta.lock_cost,
            mem_cost=trace.meta.mem_cost,
            params=dict(trace.meta.params),
        )
    )
    kept_uids = set()
    for tid, events in trace.threads.items():
        sliced.add_thread(tid)
        for event in events[checkpoint.positions.get(tid, 0):]:
            kept_uids.add(event.uid)
    for tid, events in trace.threads.items():
        for event in events[checkpoint.positions.get(tid, 0):]:
            clone = copy.copy(event)
            clone.t = max(0, event.t - checkpoint.t)
            if clone.t_request:
                clone.t_request = max(0, event.t_request - checkpoint.t)
            sliced.threads[tid].append(clone)
    sliced.lock_schedule = {
        lock: [uid for uid in uids if uid in kept_uids]
        for lock, uids in trace.lock_schedule.items()
    }
    sliced.lock_schedule = {k: v for k, v in sliced.lock_schedule.items() if v}
    return sliced
