"""Interned columnar trace core.

The analysis engine spends its time walking events and intersecting
access sets.  Both are slow over lists of :class:`TraceEvent` objects:
every step pays attribute lookups and string hashing.  This module keeps
the hot data compact instead:

* :class:`SymbolTable` — strings (tids, locks, addresses) interned to
  dense integer ids, in deterministic first-appearance order,
* :class:`ColumnarThread` — one thread's event stream as parallel arrays
  (kind code, timestamp, lock id, address id, ...), with rarely-present
  payloads (memory ops, wait tokens) in sparse per-index maps,
* :class:`ColumnarTrace` — the per-trace bundle: intern tables plus one
  :class:`ColumnarThread` per thread, presenting the same read API as
  :class:`repro.trace.trace.Trace`.

The :class:`TraceEvent` dataclass stays the public unit of exchange:
``ColumnarTrace.threads`` yields :class:`LazyEvents` sequences that
materialize (and cache) an equal ``TraceEvent`` per slot only when a
caller actually touches it, so ``trace.threads``-shaped consumers keep
working unmodified.

A plain :class:`Trace` builds (and memoizes) its columnar core via
``trace.columnar()``; the intern tables round-trip through the
``.jsonl.gz`` format as a ``{"symbols": ...}`` header line (see
:mod:`repro.trace.serialize`), so ids are stable across save/load.
"""

from __future__ import annotations

from array import array
from collections.abc import Sequence
from typing import Dict, Iterator, List, Optional

from repro.trace.events import (
    ACQUIRE,
    COMPUTE,
    CS_ENTER,
    CS_EXIT,
    POST,
    READ,
    RELEASE,
    SLEEP,
    THREAD_END,
    THREAD_START,
    TraceEvent,
    WAIT,
    WRITE,
)

#: Canonical kind order; the index is the columnar kind code.  New kinds
#: appearing at runtime extend the per-trace table past these.
KINDS = (
    THREAD_START,
    THREAD_END,
    COMPUTE,
    ACQUIRE,
    RELEASE,
    READ,
    WRITE,
    WAIT,
    POST,
    SLEEP,
    CS_ENTER,
    CS_EXIT,
)

THREAD_START_CODE = 0
THREAD_END_CODE = 1
COMPUTE_CODE = 2
ACQUIRE_CODE = 3
RELEASE_CODE = 4
READ_CODE = 5
WRITE_CODE = 6
WAIT_CODE = 7
POST_CODE = 8
SLEEP_CODE = 9
CS_ENTER_CODE = 10
CS_EXIT_CODE = 11

#: Spin/shared flag bits in the per-event flags byte.
FLAG_SPIN = 1
FLAG_SHARED = 2


class SymbolTable:
    """Bidirectional string <-> dense-int interning, insertion ordered."""

    __slots__ = ("_names", "_ids")

    def __init__(self, names: Optional[Sequence[str]] = None):
        self._names: List[str] = []
        self._ids: Dict[str, int] = {}
        if names:
            for name in names:
                self.intern(name)

    def intern(self, name: str) -> int:
        """Id of ``name``, assigning the next dense id on first sight."""
        sid = self._ids.get(name)
        if sid is None:
            sid = len(self._names)
            self._ids[name] = sid
            self._names.append(name)
        return sid

    def id(self, name: str) -> int:
        """Id of an already-interned ``name`` (KeyError otherwise)."""
        return self._ids[name]

    def name(self, sid: int) -> str:
        return self._names[sid]

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, name: str) -> bool:
        return name in self._ids

    @property
    def names(self) -> List[str]:
        return list(self._names)

    def encode(self) -> List[str]:
        return list(self._names)

    @staticmethod
    def decode(names) -> "SymbolTable":
        if not isinstance(names, (list, tuple)) or not all(
            isinstance(n, str) for n in names
        ):
            raise TypeError(f"symbol table must be a list of strings: {names!r}")
        return SymbolTable(names)


class InternTables:
    """The three per-trace symbol tables (plus the kind vocabulary)."""

    __slots__ = ("tids", "locks", "addrs", "kinds")

    def __init__(
        self,
        tids: Optional[SymbolTable] = None,
        locks: Optional[SymbolTable] = None,
        addrs: Optional[SymbolTable] = None,
        kinds: Optional[SymbolTable] = None,
    ):
        self.tids = tids if tids is not None else SymbolTable()
        self.locks = locks if locks is not None else SymbolTable()
        self.addrs = addrs if addrs is not None else SymbolTable()
        self.kinds = kinds if kinds is not None else SymbolTable(KINDS)

    def encode(self) -> dict:
        data = {
            "tids": self.tids.encode(),
            "locks": self.locks.encode(),
            "addrs": self.addrs.encode(),
        }
        extra = self.kinds.encode()[len(KINDS):]
        if extra:
            data["kinds"] = extra
        return data

    @staticmethod
    def decode(data: dict) -> "InternTables":
        if not isinstance(data, dict):
            raise TypeError(f"symbols must be an object: {data!r}")
        kinds = SymbolTable(KINDS)
        for name in data.get("kinds", []):
            if not isinstance(name, str):
                raise TypeError(f"kind names must be strings: {name!r}")
            kinds.intern(name)
        return InternTables(
            tids=SymbolTable.decode(data.get("tids", [])),
            locks=SymbolTable.decode(data.get("locks", [])),
            addrs=SymbolTable.decode(data.get("addrs", [])),
            kinds=kinds,
        )


class ColumnarThread:
    """One thread's events as parallel arrays plus sparse payload maps."""

    __slots__ = (
        "tid",
        "tid_id",
        "tables",
        "kind",
        "t",
        "duration",
        "t_request",
        "value",
        "lock_id",
        "addr_id",
        "flags",
        "uids",
        "sites",
        "ops",
        "tokens",
        "reasons",
        "woken",
    )

    def __init__(self, tid: str, tid_id: int, tables: InternTables):
        self.tid = tid
        self.tid_id = tid_id
        self.tables = tables
        self.kind = array("b")
        self.t = array("q")
        self.duration = array("q")
        self.t_request = array("q")
        self.value = array("q")
        self.lock_id = array("i")  # -1 = no lock payload
        self.addr_id = array("i")  # -1 = no address payload
        self.flags = array("B")
        self.uids: List[str] = []
        self.sites: List[object] = []
        # sparse: most events carry none of these
        self.ops: Dict[int, tuple] = {}
        self.tokens: Dict[int, str] = {}
        self.reasons: Dict[int, str] = {}
        self.woken: Dict[int, List[str]] = {}

    def __len__(self) -> int:
        return len(self.kind)

    def push(self, event: TraceEvent) -> None:
        """Append one event, interning its strings."""
        tables = self.tables
        i = len(self.kind)
        self.kind.append(tables.kinds.intern(event.kind))
        self.t.append(event.t)
        self.duration.append(event.duration)
        self.t_request.append(event.t_request)
        self.value.append(event.value)
        self.lock_id.append(tables.locks.intern(event.lock) if event.lock else -1)
        self.addr_id.append(tables.addrs.intern(event.addr) if event.addr else -1)
        flags = 0
        if event.spin:
            flags |= FLAG_SPIN
        if event.shared:
            flags |= FLAG_SHARED
        self.flags.append(flags)
        self.uids.append(event.uid)
        self.sites.append(event.site)
        if event.op is not None:
            self.ops[i] = event.op
        if event.token is not None:
            self.tokens[i] = event.token
        if event.reason:
            self.reasons[i] = event.reason
        if event.woken:
            self.woken[i] = event.woken

    def event(self, i: int) -> TraceEvent:
        """Materialize slot ``i`` back into an equal :class:`TraceEvent`."""
        tables = self.tables
        lid = self.lock_id[i]
        aid = self.addr_id[i]
        flags = self.flags[i]
        return TraceEvent(
            uid=self.uids[i],
            tid=self.tid,
            kind=tables.kinds.name(self.kind[i]),
            t=self.t[i],
            site=self.sites[i],
            duration=self.duration[i],
            lock=tables.locks.name(lid) if lid >= 0 else "",
            t_request=self.t_request[i],
            spin=bool(flags & FLAG_SPIN),
            shared=bool(flags & FLAG_SHARED),
            addr=tables.addrs.name(aid) if aid >= 0 else "",
            value=self.value[i],
            op=self.ops.get(i),
            token=self.tokens.get(i),
            reason=self.reasons.get(i, ""),
            woken=self.woken.get(i, []),
        )


class LazyEvents(Sequence):
    """Sequence view over a :class:`ColumnarThread`.

    Materializes each :class:`TraceEvent` once, on first access, so
    identity is stable across repeated reads of the same slot.
    """

    __slots__ = ("_column", "_cache")

    def __init__(self, column: ColumnarThread, cache: Optional[List[TraceEvent]] = None):
        self._column = column
        if cache is not None:
            # pre-materialized view: share the source trace's own events
            self._cache = cache
        else:
            self._cache = [None] * len(column)

    def __len__(self) -> int:
        return len(self._cache)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self._cache)))]
        event = self._cache[index]
        if event is None:
            # normalize negative indices so the cache slot matches
            if index < 0:
                index += len(self._cache)
            event = self._cache[index] = self._column.event(index)
        return event

    def __iter__(self) -> Iterator[TraceEvent]:
        for i in range(len(self._cache)):
            yield self[i]

    def __eq__(self, other) -> bool:
        if isinstance(other, LazyEvents):
            other = list(other)
        if isinstance(other, list):
            return list(self) == other
        return NotImplemented

    def __repr__(self):
        return f"<LazyEvents {self._column.tid} n={len(self._cache)}>"


class ColumnarTrace:
    """A recorded execution in interned columnar form.

    Read-compatible with :class:`repro.trace.trace.Trace`: ``threads``,
    ``events_of``, ``iter_events``, ``iter_time_order``, ``lock_schedule``,
    ``meta``, ``side``, ``end_time``, ``count`` and ``locks`` all behave
    identically (events materialize lazily).  The columnar core itself is
    immutable — mutate the source :class:`Trace` and rebuild.
    """

    def __init__(self, meta, side, lock_schedule, tables: InternTables):
        self.meta = meta
        self.side = side
        self.lock_schedule = lock_schedule
        self.tables = tables
        self.columns: Dict[str, ColumnarThread] = {}
        self._views: Optional[Dict[str, LazyEvents]] = None
        #: memoized :func:`repro.analysis.engine.scan_trace` result — the
        #: core is an immutable snapshot, so its scan is too
        self._scan = None

    @classmethod
    def from_trace(cls, trace, tables: Optional[InternTables] = None) -> "ColumnarTrace":
        """Build the columnar core of ``trace`` in one streaming pass.

        ``tables`` seeds the intern tables (e.g. the symbol table read
        back from a trace file) so ids survive a serialization round
        trip; unseen strings extend it.

        The lazy views come pre-seeded with the source trace's own event
        objects — the core is a derived snapshot of ``trace``, so sharing
        is free and ``view[i]`` never re-materializes.
        """
        tables = tables if tables is not None else InternTables()
        core = cls(trace.meta, trace.side, trace.lock_schedule, tables)
        kind_intern = tables.kinds.intern
        lock_intern = tables.locks.intern
        addr_intern = tables.addrs.intern
        views: Dict[str, LazyEvents] = {}
        for tid, events in trace.threads.items():
            column = ColumnarThread(tid, tables.tids.intern(tid), tables)
            # bulk-build: :meth:`ColumnarThread.push` unrolled — staged
            # through plain lists (C-speed array conversion at the end)
            # since this path interns every event of every trace
            kinds: List[int] = []
            ts: List[int] = []
            durations: List[int] = []
            t_requests: List[int] = []
            values: List[int] = []
            lock_ids: List[int] = []
            addr_ids: List[int] = []
            flags: List[int] = []
            for i, event in enumerate(events):
                kinds.append(kind_intern(event.kind))
                ts.append(event.t)
                durations.append(event.duration)
                t_requests.append(event.t_request)
                values.append(event.value)
                lock_ids.append(lock_intern(event.lock) if event.lock else -1)
                addr_ids.append(addr_intern(event.addr) if event.addr else -1)
                flags.append(
                    (FLAG_SPIN if event.spin else 0)
                    | (FLAG_SHARED if event.shared else 0)
                )
                if event.op is not None:
                    column.ops[i] = event.op
                if event.token is not None:
                    column.tokens[i] = event.token
                if event.reason:
                    column.reasons[i] = event.reason
                if event.woken:
                    column.woken[i] = event.woken
            column.kind = array("b", kinds)
            column.t = array("q", ts)
            column.duration = array("q", durations)
            column.t_request = array("q", t_requests)
            column.value = array("q", values)
            column.lock_id = array("i", lock_ids)
            column.addr_id = array("i", addr_ids)
            column.flags = array("B", flags)
            column.uids = [event.uid for event in events]
            column.sites = [event.site for event in events]
            core.columns[tid] = column
            views[tid] = LazyEvents(column, cache=list(events))
        core._views = views
        return core

    def columnar(self) -> "ColumnarTrace":
        """This core *is* the columnar form (Trace API compatibility)."""
        return self

    # -------------------------------------------------- Trace read API

    @property
    def threads(self) -> Dict[str, LazyEvents]:
        if self._views is None:
            self._views = {tid: LazyEvents(col) for tid, col in self.columns.items()}
        return self._views

    @property
    def thread_ids(self) -> List[str]:
        return list(self.columns)

    def events_of(self, tid: str) -> LazyEvents:
        return self.threads[tid]

    def iter_events(self) -> Iterator[TraceEvent]:
        for view in self.threads.values():
            yield from view

    def iter_time_order(self) -> List[TraceEvent]:
        from repro.trace.trace import _uid_order

        return sorted(self.iter_events(), key=lambda e: (e.t, _uid_order(e.uid)))

    def __len__(self) -> int:
        return sum(len(col) for col in self.columns.values())

    @property
    def end_time(self) -> int:
        latest = 0
        for col in self.columns.values():
            if len(col):
                latest = max(latest, col.t[-1])
        return latest

    def count(self, kind: str) -> int:
        if kind not in self.tables.kinds:
            return 0
        code = self.tables.kinds.id(kind)
        return sum(
            1 for col in self.columns.values() for k in col.kind if k == code
        )

    def locks(self) -> List[str]:
        return list(self.lock_schedule)

    def to_trace(self):
        """Materialize a plain, independently mutable :class:`Trace`."""
        from repro.trace.trace import Trace

        trace = Trace(self.meta)
        for tid, view in self.threads.items():
            trace.add_thread(tid)
            trace.threads[tid].extend(view)
        trace.lock_schedule = {k: list(v) for k, v in self.lock_schedule.items()}
        trace.side = self.side
        trace.symbols = self.tables
        return trace


def canonical_tables(trace) -> InternTables:
    """Derive intern tables in canonical (record-order) enumeration.

    Thread ids follow declaration order; locks and addresses follow first
    appearance in per-thread record order — exactly the order
    :meth:`ColumnarTrace.from_trace` assigns, so a cached core and a
    fresh derivation agree.
    """
    tables = InternTables()
    for tid, events in trace.threads.items():
        tables.tids.intern(tid)
        for event in events:
            if event.lock:
                tables.locks.intern(event.lock)
            if event.addr:
                tables.addrs.intern(event.addr)
            tables.kinds.intern(event.kind)
    return tables
