"""The Trace container: per-thread event sequences plus the lock schedule."""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Iterator, List, Optional

import re

from repro.errors import TraceError
from repro.trace.events import ACQUIRE, TraceEvent
from repro.trace.selective import SideTable

_UID_NUM = re.compile(r"(\d+)$")


@lru_cache(maxsize=1 << 18)
def _uid_order(uid: str):
    """Sort key ordering ``e2`` before ``e10`` (record order), robust to
    non-numeric uids.  Memoized: time-order sorts ask for the same uids
    over and over (serialization, write timelines, repeated analyses)."""
    match = _UID_NUM.search(uid)
    if match:
        return (0, int(match.group(1)), uid)
    return (1, 0, uid)


@dataclass
class TraceMeta:
    """Recording parameters needed to replay on an identical machine."""

    name: str = ""
    seed: int = 0
    num_cores: int = 8
    lock_cost: int = 50
    mem_cost: int = 10
    params: dict = field(default_factory=dict)

    def encode(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "num_cores": self.num_cores,
            "lock_cost": self.lock_cost,
            "mem_cost": self.mem_cost,
            "params": dict(self.params),
        }

    @staticmethod
    def decode(data: dict) -> "TraceMeta":
        return TraceMeta(
            name=data.get("name", ""),
            seed=data.get("seed", 0),
            num_cores=data.get("num_cores", 8),
            lock_cost=data.get("lock_cost", 50),
            mem_cost=data.get("mem_cost", 10),
            params=dict(data.get("params", {})),
        )


class Trace:
    """A recorded execution.

    * ``threads`` — per-thread, record-order event lists (the replay
      "program" of each thread),
    * ``lock_schedule`` — per lock, the acquire-event uids in grant order
      (the ELSC total order), and
    * ``meta`` — machine parameters of the recording run.
    """

    def __init__(self, meta: TraceMeta = None):
        self.meta = meta if meta is not None else TraceMeta()
        self.threads: Dict[str, List[TraceEvent]] = {}
        self.lock_schedule: Dict[str, List[str]] = {}
        self.side = SideTable()  # selective-recording state deltas
        #: intern tables read back from a trace file (None until loaded
        #: or derived); seeds :meth:`columnar` so ids survive round-trips
        self.symbols = None
        self._by_uid: Optional[Dict[str, TraceEvent]] = None
        self._columnar = None

    # ------------------------------------------------------------ building

    def add_thread(self, tid: str) -> None:
        if tid in self.threads:
            raise TraceError(f"duplicate thread {tid}")
        self.threads[tid] = []
        self._columnar = None

    def append(self, event: TraceEvent) -> None:
        if event.tid not in self.threads:
            self.add_thread(event.tid)
        self.threads[event.tid].append(event)
        if event.kind == ACQUIRE:
            self.lock_schedule.setdefault(event.lock, []).append(event.uid)
        self._by_uid = None
        self._columnar = None

    def columnar(self):
        """The interned columnar core of this trace (built once, cached).

        The core is a snapshot: it is invalidated by :meth:`append` /
        :meth:`add_thread`, but callers that mutate events in place or
        splice ``threads`` lists directly must not hold one across the
        mutation.
        """
        if self._columnar is None:
            from repro.trace.interning import ColumnarTrace

            self._columnar = ColumnarTrace.from_trace(self, tables=self.symbols)
            self.symbols = self._columnar.tables
        return self._columnar

    def __getstate__(self):
        # derived caches are bulky and cheap to rebuild; never pickle them
        state = self.__dict__.copy()
        state["_by_uid"] = None
        state["_columnar"] = None
        return state

    # ------------------------------------------------------------ querying

    @property
    def thread_ids(self) -> List[str]:
        return list(self.threads)

    def events_of(self, tid: str) -> List[TraceEvent]:
        return self.threads[tid]

    def event(self, uid: str) -> TraceEvent:
        if self._by_uid is None:
            self._by_uid = {e.uid: e for e in self.iter_events()}
        try:
            return self._by_uid[uid]
        except KeyError:
            raise TraceError(f"no event with uid {uid!r}") from None

    def iter_events(self) -> Iterator[TraceEvent]:
        """All events, thread by thread, in per-thread record order."""
        for events in self.threads.values():
            yield from events

    def iter_time_order(self) -> List[TraceEvent]:
        """All events sorted by timestamp.

        Ties break on record order (the numeric part of the builder's
        ``e<n>`` uids), which matters semantically: a POST and the WAIT it
        wakes can share a timestamp, and the waiters are recorded first.
        """
        return sorted(self.iter_events(), key=lambda e: (e.t, _uid_order(e.uid)))

    def __len__(self) -> int:
        return sum(len(events) for events in self.threads.values())

    @property
    def end_time(self) -> int:
        latest = 0
        for events in self.threads.values():
            if events:
                latest = max(latest, events[-1].t)
        return latest

    def count(self, kind: str) -> int:
        return sum(1 for e in self.iter_events() if e.kind == kind)

    def locks(self) -> List[str]:
        return list(self.lock_schedule)
