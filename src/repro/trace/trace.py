"""The Trace container: per-thread event sequences plus the lock schedule."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

import re

from repro.errors import TraceError
from repro.trace.events import ACQUIRE, TraceEvent
from repro.trace.selective import SideTable

_UID_NUM = re.compile(r"(\d+)$")


def _uid_order(uid: str):
    """Sort key ordering ``e2`` before ``e10`` (record order), robust to
    non-numeric uids."""
    match = _UID_NUM.search(uid)
    if match:
        return (0, int(match.group(1)), uid)
    return (1, 0, uid)


@dataclass
class TraceMeta:
    """Recording parameters needed to replay on an identical machine."""

    name: str = ""
    seed: int = 0
    num_cores: int = 8
    lock_cost: int = 50
    mem_cost: int = 10
    params: dict = field(default_factory=dict)

    def encode(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "num_cores": self.num_cores,
            "lock_cost": self.lock_cost,
            "mem_cost": self.mem_cost,
            "params": dict(self.params),
        }

    @staticmethod
    def decode(data: dict) -> "TraceMeta":
        return TraceMeta(
            name=data.get("name", ""),
            seed=data.get("seed", 0),
            num_cores=data.get("num_cores", 8),
            lock_cost=data.get("lock_cost", 50),
            mem_cost=data.get("mem_cost", 10),
            params=dict(data.get("params", {})),
        )


class Trace:
    """A recorded execution.

    * ``threads`` — per-thread, record-order event lists (the replay
      "program" of each thread),
    * ``lock_schedule`` — per lock, the acquire-event uids in grant order
      (the ELSC total order), and
    * ``meta`` — machine parameters of the recording run.
    """

    def __init__(self, meta: TraceMeta = None):
        self.meta = meta if meta is not None else TraceMeta()
        self.threads: Dict[str, List[TraceEvent]] = {}
        self.lock_schedule: Dict[str, List[str]] = {}
        self.side = SideTable()  # selective-recording state deltas
        self._by_uid: Optional[Dict[str, TraceEvent]] = None

    # ------------------------------------------------------------ building

    def add_thread(self, tid: str) -> None:
        if tid in self.threads:
            raise TraceError(f"duplicate thread {tid}")
        self.threads[tid] = []

    def append(self, event: TraceEvent) -> None:
        if event.tid not in self.threads:
            self.add_thread(event.tid)
        self.threads[event.tid].append(event)
        if event.kind == ACQUIRE:
            self.lock_schedule.setdefault(event.lock, []).append(event.uid)
        self._by_uid = None

    # ------------------------------------------------------------ querying

    @property
    def thread_ids(self) -> List[str]:
        return list(self.threads)

    def events_of(self, tid: str) -> List[TraceEvent]:
        return self.threads[tid]

    def event(self, uid: str) -> TraceEvent:
        if self._by_uid is None:
            self._by_uid = {e.uid: e for e in self.iter_events()}
        try:
            return self._by_uid[uid]
        except KeyError:
            raise TraceError(f"no event with uid {uid!r}") from None

    def iter_events(self) -> Iterator[TraceEvent]:
        """All events, thread by thread, in per-thread record order."""
        for events in self.threads.values():
            yield from events

    def iter_time_order(self) -> List[TraceEvent]:
        """All events sorted by timestamp.

        Ties break on record order (the numeric part of the builder's
        ``e<n>`` uids), which matters semantically: a POST and the WAIT it
        wakes can share a timestamp, and the waiters are recorded first.
        """
        return sorted(self.iter_events(), key=lambda e: (e.t, _uid_order(e.uid)))

    def __len__(self) -> int:
        return sum(len(events) for events in self.threads.values())

    @property
    def end_time(self) -> int:
        latest = 0
        for events in self.threads.values():
            if events:
                latest = max(latest, events[-1].t)
        return latest

    def count(self, kind: str) -> int:
        return sum(1 for e in self.iter_events() if e.kind == kind)

    def locks(self) -> List[str]:
        return list(self.lock_schedule)
