"""TraceBuilder: the observer that turns machine callbacks into a Trace.

The builder performs the *lowering* described in :mod:`repro.trace.events`:
machine-level waits/posts arrive already tokenized (the machine reports
which post woke which wait), so the builder just materializes events and
assigns globally-ordered uids ``e0, e1, ...``.
"""

from __future__ import annotations

from repro.sim.observer import NullObserver
from repro.trace.events import (
    ACQUIRE,
    COMPUTE,
    POST,
    READ,
    RELEASE,
    SLEEP,
    THREAD_END,
    THREAD_START,
    TraceEvent,
    WAIT,
    WRITE,
)
from repro.trace.selective import StateDelta
from repro.trace.trace import Trace, TraceMeta
from repro.util.ids import IdGenerator


class TraceBuilder(NullObserver):
    """Builds a :class:`Trace` while attached to a machine as observer."""

    def __init__(self, meta: TraceMeta = None):
        self.trace = Trace(meta)
        self._ids = IdGenerator()
        # machine wait-uid -> trace WAIT event uid (posts name machine uids)
        self._wait_uid_map = {}
        self._pending_waits = {}
        self._post_uid_map = {}
        self._post_events = {}

    def _uid(self) -> str:
        return self._ids.next("e")

    # ----------------------------------------------------------- callbacks

    def on_thread_start(self, tid, name, t):
        self.trace.add_thread(tid)
        self.trace.append(
            TraceEvent(uid=self._uid(), tid=tid, kind=THREAD_START, t=t)
        )

    def on_thread_end(self, tid, t):
        self.trace.append(TraceEvent(uid=self._uid(), tid=tid, kind=THREAD_END, t=t))

    def on_compute(self, tid, t_start, duration, site, uid, actual=None):
        # the trace records the *nominal* duration; jitter (``actual``)
        # is a property of one run, not of the program being recorded
        self.trace.append(
            TraceEvent(
                uid=self._uid(),
                tid=tid,
                kind=COMPUTE,
                t=t_start + duration,
                duration=duration,
                site=site,
            )
        )

    def on_acquired(self, tid, lock, t_request, t_acquired, site, uid, spin,
                    shared=False):
        self.trace.append(
            TraceEvent(
                uid=self._uid(),
                tid=tid,
                kind=ACQUIRE,
                t=t_acquired,
                t_request=t_request,
                lock=lock,
                spin=spin,
                shared=shared,
                site=site,
            )
        )

    def on_released(self, tid, lock, t, site, uid):
        self.trace.append(
            TraceEvent(
                uid=self._uid(), tid=tid, kind=RELEASE, t=t, lock=lock, site=site
            )
        )

    def on_read(self, tid, addr, value, t, site, uid):
        self.trace.append(
            TraceEvent(
                uid=self._uid(),
                tid=tid,
                kind=READ,
                t=t,
                addr=addr,
                value=value,
                site=site,
            )
        )

    def on_write(self, tid, addr, op, value_after, t, site, uid):
        self.trace.append(
            TraceEvent(
                uid=self._uid(),
                tid=tid,
                kind=WRITE,
                t=t,
                addr=addr,
                op=op.encode(),
                value=value_after,
                site=site,
            )
        )

    def on_wait_start(self, tid, kind, token, t, site, uid):
        # Materialized at wait end, when duration and poster are known.
        pass

    def on_wait_end(self, tid, kind, token, reason, t_start, t_end, site, uid):
        """Record a finished wait.

        ``token`` is the *machine* uid of the post that woke it (None on
        timeout).  The machine notifies waiters *before* the poster, but
        the trace must record the POST first (its uid is the token waits
        reference, and replay/race analyses process record order at equal
        timestamps).  Waits whose post has not been recorded yet are
        buffered and flushed by :meth:`on_post`.
        """
        if token is not None and token not in self._post_uid_map:
            self._pending_waits.setdefault(token, []).append(
                (tid, reason, t_start, t_end, site, uid)
            )
            return
        trace_token = self._post_uid_map.get(token) if token is not None else None
        self._emit_wait(tid, trace_token, reason, t_start, t_end, site, uid)

    def _emit_wait(self, tid, trace_token, reason, t_start, t_end, site, uid):
        event = TraceEvent(
            uid=self._uid(),
            tid=tid,
            kind=WAIT,
            t=t_end,
            duration=t_end - t_start,
            token=trace_token,
            reason=reason,
            site=site,
        )
        self._wait_uid_map[uid] = event.uid
        if trace_token is not None:
            poster = self._post_events.get(trace_token)
            if poster is not None:
                poster.woken.append(event.uid)
        self.trace.append(event)
        return event.uid

    def on_post(self, tid, kind, token, woken, t, site, uid):
        event = TraceEvent(
            uid=self._uid(),
            tid=tid,
            kind=POST,
            t=t,
            token=None,
            site=site,
        )
        event.token = event.uid  # a post's token is its own trace uid
        self._post_uid_map[uid] = event.uid
        self._post_events[event.uid] = event
        self.trace.append(event)
        # flush any waits that arrived before this post was recorded
        for entry in self._pending_waits.pop(uid, []):
            w_tid, reason, t_start, t_end, w_site, w_uid = entry
            self._emit_wait(w_tid, event.uid, reason, t_start, t_end, w_site, w_uid)

    def on_sleep(self, tid, duration, t, site, uid):
        self.trace.append(
            TraceEvent(
                uid=self._uid(),
                tid=tid,
                kind=SLEEP,
                t=t + duration,
                duration=duration,
                site=site,
            )
        )

    def on_opaque(self, tid, duration, changes, t, site, uid):
        """Selective recording: the bypassed range becomes one SLEEP event
        plus a state delta in the trace's side table."""
        event = TraceEvent(
            uid=self._uid(),
            tid=tid,
            kind=SLEEP,
            t=t + duration,
            duration=duration,
            site=site,
        )
        self.trace.append(event)
        if changes:
            self.trace.side.deltas.append(
                StateDelta(sleep_uid=event.uid, duration=duration, changes=changes)
            )
