"""Live incremental analysis: watch a trace converge instead of waiting.

The batch pipeline records fully, then analyzes.  ``repro.observe``
folds a segmented trace into analysis state *as it grows* — one epoch
per segment — and emits a deterministic stream of progress snapshots:
events seen, segments folded, the current ULCP breakdown, per-lock
contention, the streaming Eq. 2 top-K ranking, and ``stable_for``, the
number of consecutive snapshots whose ranking did not change (the signal
behind ``repro watch --until-stable N``).

Three entry points share one fold:

* :func:`watch` — tail-follow a file another process is still writing
  (``repro watch PATH``); distinguishes "mid-write, retry" from real
  corruption via :class:`repro.trace.segments.SegmentTail`.
* :func:`fold_snapshots` — the batch twin: the full snapshot sequence of
  a complete file, byte-identical to what a live watch would have
  printed.
* ``api.analyze(..., on_progress=...)`` — in-process pipelines receive
  the same snapshots while a normal analysis runs
  (:func:`repro.observe.fold.run_with_progress` underneath).

**Determinism contract.**  A snapshot is a pure function of the trace
prefix folded so far: byte-identical (via :func:`snapshot_dumps`) across
runs, across poll timings, across kernel backends (numpy vs pure), and
across watch-vs-batch.  The terminal snapshot embeds the exact
``repro analyze`` result object, so ``repro watch`` and
``repro analyze --format json`` agree byte-for-byte on a finished trace.
"""

from repro.observe.fold import (
    DEFAULT_TOP_K,
    SNAPSHOT_VERSION,
    IncrementalFold,
    fold_snapshots,
    run_with_progress,
    snapshot_dumps,
    terminal_snapshot,
)
from repro.observe.watch import WatchResult, render_snapshot, watch

__all__ = [
    "SNAPSHOT_VERSION",
    "DEFAULT_TOP_K",
    "IncrementalFold",
    "fold_snapshots",
    "run_with_progress",
    "snapshot_dumps",
    "terminal_snapshot",
    "watch",
    "WatchResult",
    "render_snapshot",
]
