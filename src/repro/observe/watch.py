"""Tail-follow a (possibly still growing) segmented trace and fold live.

:func:`watch` is the engine behind ``repro watch``: it polls a
:class:`repro.trace.segments.SegmentTail` for newly completed segments,
folds each into an :class:`repro.observe.fold.IncrementalFold`, and
hands every snapshot to a callback.  The loop ends in one of three ways:

* **complete** — the tail reached the footer; the fold finishes through
  the shared batch path and the terminal snapshot (whose ``result`` is
  byte-identical to ``repro analyze``) is emitted.
* **early stop** — ``until_stable=N`` was given and the top-K ranking
  held unchanged for N consecutive snapshots.  If a run id was supplied
  and the file is already complete, the mid-scan state is checkpointed
  first, so a later ``repro analyze --resume RUN_ID`` fast-forwards past
  every folded segment instead of redoing the work.
* **stall** — the file stopped growing for longer than ``grace``
  seconds without a footer (e.g. the recorder died).  Partial results
  stay valid; the caller decides what to do with them.

Timing (``interval``, ``grace``) only affects *when* the loop looks at
the file — never what it emits: the snapshot sequence is a pure function
of the trace prefix, so two watchers racing the same recorder print
byte-identical streams.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Union

from repro import log, telemetry
from repro.observe.fold import DEFAULT_TOP_K, IncrementalFold
from repro.trace.segments import SegmentTail

_log = log.get_logger("observe")


@dataclass
class WatchResult:
    """Outcome of one :func:`watch` loop."""

    #: snapshots emitted (including the terminal one, when reached)
    snapshots: int = 0
    #: segments folded
    segments: int = 0
    #: the trace completed and the terminal snapshot was emitted
    complete: bool = False
    #: ``until_stable`` fired before the trace completed folding
    early_stopped: bool = False
    #: the file stopped growing for longer than ``grace`` with no footer
    stalled: bool = False
    #: a resumable checkpoint was written (early stop with ``resume=``)
    checkpoint_saved: bool = False
    #: the finished analysis (``complete`` only)
    analysis: Optional[object] = None
    #: the last snapshot emitted, terminal or not
    final_snapshot: Optional[dict] = field(default=None, repr=False)


def watch(
    path: Union[str, Path],
    *,
    on_snapshot: Optional[Callable[[dict], None]] = None,
    interval: float = 0.5,
    grace: float = 30.0,
    until_stable: int = 0,
    top_k: int = DEFAULT_TOP_K,
    benign_detection: bool = True,
    resume: Optional[str] = None,
    checkpoint_every: int = 16,
    sleep: Callable[[float], None] = time.sleep,
    clock: Callable[[], float] = time.monotonic,
) -> WatchResult:
    """Follow ``path`` until complete, stable for N epochs, or stalled.

    ``path`` may not exist yet, or exist only as the writer's private
    ``.tmp-*`` sibling — the tail discovers both.  ``on_snapshot``
    receives every snapshot dict in sequence.  ``until_stable=N > 0``
    requests early termination once ``stable_for`` reaches N;
    ``resume=RUN_ID`` additionally checkpoints the fold (at the usual
    segment cadence, and once more on early stop) so batch analysis can
    pick up where the watch left off — checkpoints need the complete
    file's index, so they only happen once the footer exists.
    ``grace <= 0`` disables the stall detector.  ``sleep``/``clock`` are
    injectable for tests.
    """
    path = Path(path)
    tail = SegmentTail(path)
    tail.keep_boundaries = resume is not None
    fold: Optional[IncrementalFold] = None
    checkpointer = None
    result = WatchResult()
    last_growth = clock()

    def emit(snap: dict) -> None:
        result.snapshots += 1
        result.final_snapshot = snap
        if on_snapshot is not None:
            on_snapshot(snap)

    def ensure_checkpointer():
        """Checkpoints are tagged with the complete file's digest, so
        they only become possible once the footer landed on disk."""
        nonlocal checkpointer
        if resume is None or checkpointer is not None or not tail.complete:
            return checkpointer
        if not path.exists():
            return None  # footer read from the .tmp file; rename pending
        from repro.api import _checkpointer_for

        checkpointer = _checkpointer_for(path, resume, checkpoint_every)
        return checkpointer

    def save_checkpoint(ck) -> None:
        """Checkpoint at the *fold* position: the tail may have parsed
        ahead, so the reader state comes from the matching boundary."""
        payload = fold.suspend_payload()
        payload["reader"] = tail.suspend_at(fold.segments_folded)
        ck.save(payload, fold.segments_folded)

    with tail:
        while True:
            segments = tail.poll()
            if tail.header_ready and fold is None:
                fold = IncrementalFold(tail, top_k=top_k)
            if segments:
                last_growth = clock()
                for segment in segments:
                    fold.add(segment)
                    emit(fold.snapshot())
                    result.segments = fold.segments_folded
                    ck = ensure_checkpointer()
                    if ck is not None and ck.due(fold.segments_folded):
                        save_checkpoint(ck)
                    if until_stable > 0 and fold.stable_for >= until_stable:
                        telemetry.count("analyze.early_stop")
                        _log.info(
                            "ranking stable, stopping early",
                            extra={
                                "stable_for": fold.stable_for,
                                "segments": fold.segments_folded,
                            },
                        )
                        ck = ensure_checkpointer()
                        if ck is not None:
                            save_checkpoint(ck)
                            result.checkpoint_saved = True
                        result.early_stopped = True
                        return result
            if tail.complete:
                break
            if not segments:
                if grace > 0 and clock() - last_growth > grace:
                    _log.warning(
                        "trace stopped growing without a footer",
                        extra={"path": str(path), "grace_s": grace},
                    )
                    result.stalled = True
                    return result
                sleep(interval)

    # footer reached: finish through the shared batch path.  The final
    # rename races the footer read; prefer the final path, fall back to
    # whatever the tail last read from.
    target = path if path.exists() else tail.active_path()
    try:
        analysis, terminal = fold.finish(
            target, benign_detection=benign_detection
        )
    except FileNotFoundError:
        # renamed between the exists() check and the benign re-stream
        analysis, terminal = fold.finish(
            path, benign_detection=benign_detection
        )
    emit(terminal)
    result.segments = fold.segments_folded
    result.complete = True
    result.analysis = analysis
    ck = ensure_checkpointer()
    if ck is not None:
        # the watch finished the whole analysis; a leftover checkpoint
        # would only tempt a later --resume into stale fast-forwarding
        ck.clear()
    return result


def render_snapshot(snap: dict) -> str:
    """Human-readable multi-line rendering of one snapshot (the TUI body)."""
    kind = "final" if snap.get("complete") else "live"
    lines = [
        f"repro watch — {kind} snapshot #{snap['seq']}",
        (
            f"  segments {snap['segments']}  events {snap['events']}  "
            f"sections {snap['sections']}"
            + (
                f" (+{snap['open_sections']} open)"
                if snap.get("open_sections")
                else ""
            )
        ),
        (
            f"  pairs {snap['pairs']}  ulcps {snap['ulcps']}"
            + (
                f"  pending-benign {snap['pending']}"
                if snap.get("pending")
                else ""
            )
        ),
    ]
    breakdown = snap["breakdown"]
    lines.append(
        "  " + "  ".join(
            f"{kind}={breakdown[kind]}"
            for kind in (
                "null_lock", "read_read", "disjoint_write", "benign", "tlcp"
            )
        )
    )
    if snap["ranking"]:
        lines.append(
            f"  top-{len(snap['ranking'])} ranking "
            f"(stable for {snap['stable_for']}):"
        )
        for i, entry in enumerate(snap["ranking"], 1):
            lines.append(
                f"    {i}. {entry['lock']}  "
                f"ulcp_wait={entry['ulcp_wait_ns']}  p={entry['p']:.3f}"
            )
    else:
        lines.append("  ranking: (no contended ULCP wait yet)")
    return "\n".join(lines) + "\n"
