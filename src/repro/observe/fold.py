"""Incremental segment fold: live analysis state + deterministic snapshots.

One :class:`IncrementalFold` owns exactly the state
:func:`repro.analysis.engine.scan_segments` would carry mid-stream — the
growing :class:`~repro.analysis.engine.TraceScan`, the first-toucher
sharedness map and the per-thread walk states — but is *fed* segments by
a caller (a :class:`repro.trace.segments.SegmentTail` poll loop, a
recorder-side ``on_segment`` hook, or a plain strict reader) instead of
pulling them.  After every folded segment it can emit a **snapshot**: a
versioned, JSON-serializable progress record whose bytes depend only on
the trace prefix folded so far — never on wall-clock time, poll
batching, or the kernel backend (numpy and pure python walks are
byte-equivalent by construction).

Snapshot semantics
------------------

* Only *closed* critical sections participate (an open section has no
  access masks yet).  Pairs are consecutive different-thread closed
  sections per lock, classified by Algorithm 1 on ephemeral shared
  masks — the fold never mutates section state, so folding is
  side-effect-free with respect to the final
  :func:`~repro.analysis.streaming.analyze_segments`-equivalent result.
* Pairs Algorithm 1 answers FALSE for are *pending*: the reversed-replay
  benign test needs evidence pass 2 deliberately does not keep, so
  intermediate snapshots count them in the ``tlcp`` bucket (the
  benign-detection-off convention) and report them in ``pending``.  The
  terminal snapshot resolves them through the real benign pass.
* The ranking is a streaming Eq. 2 estimate: per lock, the contended
  wait attributable to ULCP-classified pairs, normalized by the total
  contended wait.  ``top`` is the ordered top-K lock list;
  ``stable_for`` counts consecutive snapshots with an identical
  non-empty ``top`` — the signal behind ``--until-stable``.

The terminal snapshot is produced from the finished
:class:`~repro.analysis.pairs.PairAnalysis` itself — built by the same
:func:`repro.analysis.streaming.assemble_analysis` code path as batch
analysis, so its ``result`` object (and any envelope rendered from it)
is byte-identical to ``repro analyze``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro import telemetry
from repro.analysis.engine import (
    TraceScan,
    _finalize_scan,
    _ThreadScanState,
    walk_chunk,
)
from repro.analysis.streaming import assemble_analysis, count_analysis
from repro.analysis.ulcp import (
    DISJOINT_WRITE,
    NULL_LOCK,
    READ_READ,
    UlcpBreakdown,
)
from repro.errors import TraceError

#: snapshot schema version (bumped on breaking shape changes)
SNAPSHOT_VERSION = 1

#: default ranking depth (locks in the Eq. 2 estimate / stability check)
DEFAULT_TOP_K = 5

_KINDS = ("null_lock", "read_read", "disjoint_write", "benign", "tlcp")


def snapshot_dumps(snapshot: dict) -> str:
    """Canonical one-line encoding of a snapshot (sorted keys, compact).

    This is the byte form the determinism contract is stated over: for a
    fixed trace prefix, ``repro watch --format json`` emits exactly this
    line sequence on every run, under either kernel backend.
    """
    import json

    return json.dumps(snapshot, sort_keys=True, separators=(",", ":")) + "\n"


def _classify_masks(srd1: int, swr1: int, srd2: int, swr2: int) -> Optional[str]:
    """Algorithm 1 over ephemeral shared masks; ``None`` means FALSE
    (pending the terminal benign pass).  Mirrors the mask branch of
    :func:`repro.analysis.classify.classify_pair` exactly."""
    if not (srd1 | swr1) or not (srd2 | swr2):
        return NULL_LOCK
    if not swr1 and not swr2:
        return READ_READ
    if not (srd1 & swr2) and not (swr1 & srd2) and not (swr1 & swr2):
        return DISJOINT_WRITE
    return None


class IncrementalFold:
    """Folds segments into live scan state; emits deterministic snapshots.

    ``reader`` is anything header-complete with ``threads`` and
    ``tables`` attributes (a :class:`~repro.trace.segments.SegmentedReader`
    or a header-ready :class:`~repro.trace.segments.SegmentTail`).
    """

    def __init__(self, reader, *, top_k: int = DEFAULT_TOP_K):
        self.reader = reader
        self.top_k = top_k
        self.tables = reader.tables
        self._lock_name = self.tables.locks.name
        self.scan = TraceScan(tables=self.tables)
        self.first_toucher: Dict[int, int] = {}
        self.states: Dict[str, _ThreadScanState] = {
            tid: _ThreadScanState() for tid in reader.threads
        }
        self.segments_folded = 0
        self.seq = 0
        self.prev_top: Optional[List[str]] = None
        self.stable_for = 0
        self.finished = False

    # ------------------------------------------------------------- folding

    def restore(self, scan, first_toucher, states, segments_done: int) -> None:
        """Adopt a checkpointed mid-scan state (see
        :func:`repro.analysis.engine._restore_scan`); the reader must
        already be fast-forwarded to the matching position."""
        self.scan = scan
        self.first_toucher = first_toucher
        self.states = states
        self.segments_folded = segments_done
        self.tables = self.reader.tables
        self._lock_name = self.tables.locks.name

    def add(self, segment) -> None:
        """Fold one decoded segment into the live scan state."""
        if self.finished:
            raise TraceError("fold already finished; open a new one")
        for chunk in segment.chunks:
            self.scan.events += len(chunk.column.kind)
            walk_chunk(chunk.tid, chunk.column, chunk.start,
                       self.states[chunk.tid], self.scan,
                       self.first_toucher, self._lock_name)
        self.segments_folded += 1
        telemetry.count("analyze.segments_folded")

    def suspend_payload(self) -> dict:
        """The exact checkpoint payload shape
        :func:`~repro.analysis.engine.scan_segments` saves, so a watch
        checkpoint resumes a later batch ``repro analyze --resume`` with
        zero redone segments."""
        return {
            "scan": self.scan,
            "first_toucher": self.first_toucher,
            "states": self.states,
            "reader": self.reader.suspend(),
        }

    # ----------------------------------------------------------- snapshots

    def _advance_stability(self, top: List[str]) -> int:
        if not top:
            self.stable_for = 0
        elif top == self.prev_top:
            self.stable_for += 1
        else:
            self.stable_for = 1
        self.prev_top = list(top)
        return self.stable_for

    def snapshot(self) -> dict:
        """One intermediate snapshot of the state folded so far.

        Pure over the scan state (no section is mutated), but advances
        the fold's snapshot sequence number and stability counter — call
        exactly once per folded epoch."""
        scan = self.scan
        shared_mask = 0
        for aid in scan.shared_ids:
            shared_mask |= 1 << aid
        closed = [cs for cs in scan.sections if cs.read_mask is not None]
        closed.sort(key=lambda cs: (cs.t_start, cs.uid))
        by_lock: Dict[str, List] = {}
        for cs in closed:
            by_lock.setdefault(cs.lock, []).append(cs)

        breakdown = dict.fromkeys(_KINDS, 0)
        locks_out: List[dict] = []
        pairs = pending = 0
        for lock in sorted(by_lock):
            group = by_lock[lock]
            contended = wait_ns = ulcp_wait = 0
            for cs in group:
                wait = cs.acquire.wait_time
                if wait > 0:
                    contended += 1
                    wait_ns += wait
            for first, second in zip(group, group[1:]):
                if first.tid == second.tid:
                    continue
                pairs += 1
                kind = _classify_masks(
                    first.read_mask & shared_mask,
                    first.write_mask & shared_mask,
                    second.read_mask & shared_mask,
                    second.write_mask & shared_mask,
                )
                if kind is None:
                    pending += 1
                    breakdown["tlcp"] += 1  # provisional, see module doc
                    continue
                breakdown[kind] += 1
                if (second.acquire.wait_time > 0
                        and second.acquire.t_request < first.t_end):
                    ulcp_wait += second.acquire.wait_time
            locks_out.append({
                "lock": lock,
                "sections": len(group),
                "contended": contended,
                "wait_ns": wait_ns,
                "ulcp_wait_ns": ulcp_wait,
            })

        ulcps = (breakdown["null_lock"] + breakdown["read_read"]
                 + breakdown["disjoint_write"])
        self.seq += 1
        snap = {
            "v": SNAPSHOT_VERSION,
            "seq": self.seq,
            "complete": False,
            "segments": self.segments_folded,
            "events": scan.events,
            "sections": len(closed),
            "open_sections": len(scan.sections) - len(closed),
            "pairs": pairs,
            "ulcps": ulcps,
            "pending": pending,
            "breakdown": breakdown,
            "locks": locks_out,
        }
        _attach_ranking(snap, locks_out, self.top_k)
        snap["stable_for"] = self._advance_stability(snap["top"])
        return snap

    # ------------------------------------------------------------ terminal

    def finish(self, path, *, benign_detection: bool = True):
        """Complete the analysis: finalize the scan, run the shared
        classify + benign pass of :mod:`repro.analysis.streaming`, and
        emit the terminal snapshot.

        ``path`` must name the complete container (footer present) —
        the benign evidence pass re-streams it.  Returns
        ``(analysis, terminal_snapshot)`` where ``analysis`` is
        byte-equivalent to ``analyze_segments(path)``.
        """
        if self.finished:
            raise TraceError("fold already finished; open a new one")
        for tid, st in self.states.items():
            if st.open_by_lock:
                raise TraceError(f"{tid}: unclosed critical sections")
        _finalize_scan(self.scan)
        telemetry.count("analyze.scans")
        telemetry.count("analyze.events_scanned", self.scan.events)
        telemetry.count("analyze.sections", len(self.scan.sections))
        with telemetry.span("analyze.pairs"):
            analysis, benign_tests = assemble_analysis(
                path, self.scan, benign_detection=benign_detection
            )
        count_analysis(analysis, benign_tests)
        self.finished = True
        self.seq += 1
        snap = terminal_snapshot(
            analysis, seq=self.seq, segments=self.segments_folded,
            top_k=self.top_k,
        )
        snap["stable_for"] = self._advance_stability(snap["top"])
        return analysis, snap


def _attach_ranking(snap: dict, locks_out: List[dict], top_k: int) -> None:
    """Eq. 2-style estimate: contended ULCP wait over total contended
    wait, top-K by (wait desc, lock name)."""
    total_wait = sum(entry["wait_ns"] for entry in locks_out)
    ranked = sorted(
        (e for e in locks_out if e["ulcp_wait_ns"] > 0),
        key=lambda e: (-e["ulcp_wait_ns"], e["lock"]),
    )[:top_k]
    snap["ranking"] = [{
        "lock": e["lock"],
        "ulcp_wait_ns": e["ulcp_wait_ns"],
        "p": (e["ulcp_wait_ns"] / total_wait) if total_wait else 0.0,
    } for e in ranked]
    snap["top"] = [e["lock"] for e in ranked]


def terminal_snapshot(analysis, *, seq: int = 1, segments: int = 0,
                      top_k: int = DEFAULT_TOP_K) -> dict:
    """The final snapshot of a finished :class:`PairAnalysis`.

    Its ``result`` object is exactly
    :func:`repro.serve.protocol.analyze_result` — the same dict the v1
    envelope wraps — so the watch terminal output, the SSE terminal
    event and ``repro analyze --format json`` all agree byte-for-byte.
    ``stable_for`` is the caller's to fill (the fold tracks it); it
    defaults to 0 for standalone use (e.g. a non-streaming
    ``api.analyze(..., on_progress=...)`` call).
    """
    from repro.serve.protocol import analyze_result

    per_lock: Dict[str, dict] = {}
    for cs in analysis.sections:
        entry = per_lock.setdefault(cs.lock, {
            "lock": cs.lock, "sections": 0, "contended": 0,
            "wait_ns": 0, "ulcp_wait_ns": 0,
        })
        entry["sections"] += 1
        wait = cs.acquire.wait_time
        if wait > 0:
            entry["contended"] += 1
            entry["wait_ns"] += wait
    for pair in analysis.pairs:
        if pair.is_ulcp and pair.contended:
            per_lock[pair.lock]["ulcp_wait_ns"] += pair.c2.acquire.wait_time
    locks_out = [per_lock[lock] for lock in sorted(per_lock)]

    breakdown = analysis.breakdown
    snap = {
        "v": SNAPSHOT_VERSION,
        "seq": seq,
        "complete": True,
        "segments": segments,
        "events": analysis.events,
        "sections": len(analysis.sections),
        "open_sections": 0,
        "pairs": len(analysis.pairs),
        "ulcps": len(analysis.ulcps),
        "pending": 0,
        "breakdown": {kind: getattr(breakdown, kind) for kind in _KINDS},
        "locks": locks_out,
        "result": analyze_result(analysis),
    }
    _attach_ranking(snap, locks_out, top_k)
    snap["stable_for"] = 0
    return snap


def fold_snapshots(path, *, top_k: int = DEFAULT_TOP_K,
                   benign_detection: bool = True):
    """Yield the full snapshot sequence of a *complete* segmented trace.

    One intermediate snapshot per segment, then the terminal snapshot.
    This is the batch twin of the live watch loop: for any prefix of the
    trace, the first ``k`` snapshots here are byte-identical to what a
    tail-following watch emitted while that prefix was the whole file.
    """
    from repro.trace.segments import open_segmented

    with open_segmented(path) as reader:
        fold = IncrementalFold(reader, top_k=top_k)
        for segment in reader.segments():
            fold.add(segment)
            yield fold.snapshot()
    _, terminal = fold.finish(path, benign_detection=benign_detection)
    yield terminal


def run_with_progress(path, *, benign_detection: bool = True,
                      checkpoint=None, on_progress=None,
                      top_k: int = DEFAULT_TOP_K):
    """Batch analysis of a complete segmented trace with live snapshots.

    Equivalent to :func:`repro.analysis.streaming.analyze_segments`
    (same result object, same checkpoint payloads, checkpoint cleared on
    completion) but folds segment-by-segment and calls
    ``on_progress(snapshot)`` after each epoch plus once with the
    terminal snapshot.  With an existing checkpoint the scan
    fast-forwards exactly like batch analysis; snapshots then cover only
    the newly scanned tail.
    """
    from repro.analysis.engine import _restore_scan
    from repro.trace.segments import open_segmented

    with telemetry.span("analyze.fold_segments"):
        with open_segmented(path) as reader:
            fold = IncrementalFold(reader, top_k=top_k)
            if checkpoint is not None:
                restored = _restore_scan(reader, checkpoint)
                if restored is not None:
                    scan, first_toucher, states, start_at = restored
                    fold.restore(scan, first_toucher, states, start_at)
                    telemetry.count("analyze.segments_resumed", start_at)
            for segment in reader.segments():
                fold.add(segment)
                if on_progress is not None:
                    on_progress(fold.snapshot())
                if (checkpoint is not None
                        and checkpoint.due(fold.segments_folded)):
                    checkpoint.save(fold.suspend_payload(),
                                    fold.segments_folded)
        analysis, terminal = fold.finish(
            path, benign_detection=benign_detection
        )
        if checkpoint is not None:
            checkpoint.clear()
    if on_progress is not None:
        on_progress(terminal)
    return analysis
