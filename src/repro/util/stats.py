"""Tiny descriptive-statistics helpers used by experiments and reports."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class Summary:
    """Mean / spread summary of a sample of measurements."""

    n: int
    mean: float
    stdev: float
    minimum: float
    maximum: float

    @property
    def cv(self) -> float:
        """Coefficient of variation (stdev / mean); 0 for a zero mean."""
        if self.mean == 0:
            return 0.0
        return self.stdev / abs(self.mean)

    @property
    def spread(self) -> float:
        """Max - min of the sample."""
        return self.maximum - self.minimum


def summarize(values: Iterable[float]) -> Summary:
    """Summarize a non-empty sample."""
    data: Sequence[float] = list(values)
    if not data:
        raise ValueError("cannot summarize an empty sample")
    n = len(data)
    mean = sum(data) / n
    if n > 1:
        var = sum((x - mean) ** 2 for x in data) / (n - 1)
    else:
        var = 0.0
    return Summary(
        n=n,
        mean=mean,
        stdev=math.sqrt(var),
        minimum=min(data),
        maximum=max(data),
    )
