"""Small shared utilities: id generation, RNG plumbing, statistics."""

from repro.util.ids import IdGenerator
from repro.util.rng import derive_rng, derive_seed
from repro.util.stats import Summary, summarize

__all__ = ["IdGenerator", "derive_rng", "derive_seed", "Summary", "summarize"]
