"""Stale temp-file hygiene for the atomic-write pattern.

Every atomic writer in the package (``serialize.dump``, the segmented
writer, ``runner.cache``, the checkpointer) stages bytes as
``.tmp-<pid>-<name>`` in the destination directory and ``os.replace``\\ s
them into place.  A SIGKILL between ``open`` and ``os.replace`` leaks
that temp file forever — harmless to correctness (readers never open
temp names) but it accumulates, pollutes ``cache info`` counts and
defeats "no torn files" audits.

This module is the single source of truth for the temp-name convention:

* :func:`is_tmp_name` — the ignore-pattern every reader/count applies,
* :func:`reap_stale` — delete temp files whose owning pid is gone,
  called when a cache is opened (and by the chaos harness's invariant
  checks).  Temp files of *live* pids are left alone: they belong to a
  concurrent writer mid-flight.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import List, Optional, Union

#: prefix of every atomically-staged temp file
TMP_PREFIX = ".tmp-"


def tmp_name(path: Union[str, Path]) -> Path:
    """The staging name for ``path``, owned by this process."""
    path = Path(path)
    return path.with_name(f"{TMP_PREFIX}{os.getpid()}-{path.name}")


def is_tmp_name(name: str) -> bool:
    """Whether ``name`` is an atomic-write staging file."""
    return name.startswith(TMP_PREFIX)


def tmp_owner_pid(name: str) -> Optional[int]:
    """The pid embedded in a staging name, or ``None`` if unparsable."""
    if not name.startswith(TMP_PREFIX):
        return None
    rest = name[len(TMP_PREFIX):]
    pid_text, _, remainder = rest.partition("-")
    if not remainder or not pid_text.isdigit():
        return None
    return int(pid_text)


def pid_alive(pid: int) -> bool:
    """Best-effort liveness check (signal 0; permission errors = alive)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError:
        return False
    return True


def find_stale(root: Union[str, Path]) -> List[Path]:
    """Staging files under ``root`` whose owning process is gone."""
    root = Path(root)
    if not root.is_dir():
        return []
    stale: List[Path] = []
    for path in root.rglob(f"{TMP_PREFIX}*"):
        if not path.is_file():
            continue
        pid = tmp_owner_pid(path.name)
        if pid is None or not pid_alive(pid):
            stale.append(path)
    return sorted(stale)


def reap_stale(root: Union[str, Path]) -> int:
    """Delete dead-owner staging files under ``root``; returns the count."""
    removed = 0
    for path in find_stale(root):
        try:
            path.unlink(missing_ok=True)
            removed += 1
        except OSError:
            # a racing reaper (another process opening the same cache)
            # already got it, or the directory is read-only: both fine
            continue
    return removed
