"""Deterministic id generation.

Every entity that must be referenced across pipeline stages (trace events,
critical sections, auxiliary locks) carries a stable string uid.  Uids are
allocated sequentially from named streams so that a (workload, seed) pair
always produces the same ids.
"""

from __future__ import annotations


class IdGenerator:
    """Allocates sequential ids of the form ``"<prefix><n>"`` per prefix."""

    def __init__(self):
        self._counters = {}

    def next(self, prefix: str) -> str:
        """Return the next id for ``prefix`` (``"e0"``, ``"e1"``, ...)."""
        n = self._counters.get(prefix, 0)
        self._counters[prefix] = n + 1
        return f"{prefix}{n}"

    def peek(self, prefix: str) -> int:
        """Return the number of ids already allocated for ``prefix``."""
        return self._counters.get(prefix, 0)

    def reset(self, prefix: str = None) -> None:
        """Reset one prefix, or every prefix when none is given."""
        if prefix is None:
            self._counters.clear()
        else:
            self._counters.pop(prefix, None)
