"""Seeded randomness plumbing.

All nondeterminism in the simulator flows through ``random.Random`` instances
derived here.  Derivation is by stable string labels, so adding a new consumer
of randomness does not perturb the streams of existing consumers.
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(base_seed: int, *labels: str) -> int:
    """Derive a child seed from ``base_seed`` and a path of string labels."""
    digest = hashlib.sha256()
    digest.update(str(base_seed).encode("utf-8"))
    for label in labels:
        digest.update(b"/")
        digest.update(label.encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big")


def derive_rng(base_seed: int, *labels: str) -> random.Random:
    """Return a ``random.Random`` seeded from ``derive_seed``."""
    return random.Random(derive_seed(base_seed, *labels))
