"""Speculative lock elision (Rajwar & Goodman) as a trace-replay baseline.

LE executes critical sections speculatively without taking the lock and
falls back to acquisition on a data conflict.  On the simulator this is
modelled at the trace level:

* a critical section with no true conflict (no causal edge in the
  topology) runs lock-free — its lock/unlock events are elided;
* a conflicting section first *aborts* (wasting a rollback penalty
  proportional to the work it speculated) and then re-executes with the
  lock, reproducing LE's known weakness — the paper's motivation for
  letting programmers fix ULCPs instead (§2.2, §7.1).

Unlike PERFPLAY's transformation, LE gives no debugging output; this
module exists for head-to-head benches.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.analysis.sections import CriticalSection
from repro.analysis.topology import Topology
from repro.analysis.transform import TransformResult
from repro.replay.collector import TimestampCollector
from repro.replay.programs import _base_request
from repro.replay.results import ReplayResult
from repro.sim import requests as rq
from repro.sim.machine import Machine
from repro.trace.events import ACQUIRE, RELEASE, TraceEvent
from repro.trace.trace import Trace

#: An aborted speculation wastes this fraction of the section's body work
#: (one failed attempt plus rollback bookkeeping).
ABORT_PENALTY_FACTOR = 1.0


def _conflicting_cs_uids(topology: Topology) -> set:
    """Sections participating in any causal (true-conflict) edge."""
    uids = set()
    for src, dst in topology.causal_edges():
        uids.add(src)
        uids.add(dst)
    return uids


def _elided_thread(
    events: List[TraceEvent],
    sections_by_acquire: Dict[str, CriticalSection],
    sections_by_release: Dict[str, CriticalSection],
    conflicting: set,
) -> Iterator:
    for event in events:
        if event.kind == ACQUIRE:
            cs = sections_by_acquire[event.uid]
            if cs.uid in conflicting:
                # failed speculation: wasted body work, then take the lock
                penalty = int(cs.duration * ABORT_PENALTY_FACTOR)
                if penalty:
                    yield rq.Compute(penalty, site=event.site)
                yield rq.Acquire(
                    lock=event.lock, spin=event.spin, site=event.site, uid=event.uid
                )
            # non-conflicting: elided entirely
        elif event.kind == RELEASE:
            cs = sections_by_release.get(event.uid)
            if cs is not None and cs.uid in conflicting:
                yield rq.Release(lock=event.lock, site=event.site, uid=event.uid)
        else:
            request = _base_request(event)
            if request is not None:
                yield request


def elision_programs(result: TransformResult) -> List[Tuple[Iterator, str]]:
    """Replayable LE programs for a transformed analysis result."""
    conflicting = _conflicting_cs_uids(result.topology)
    by_acquire = {cs.uid: cs for cs in result.sections}
    by_release = {cs.release.uid: cs for cs in result.sections}
    return [
        (_elided_thread(events, by_acquire, by_release, conflicting), tid)
        for tid, events in result.original.threads.items()
    ]


def replay_lock_elision(result: TransformResult, *, seed: int = 0) -> ReplayResult:
    """Replay the original trace under the lock-elision model."""
    trace: Trace = result.original
    collector = TimestampCollector()
    machine = Machine(
        num_cores=trace.meta.num_cores,
        observer=collector,
        lock_cost=trace.meta.lock_cost,
        mem_cost=trace.meta.mem_cost,
    )
    for program, tid in elision_programs(result):
        machine.add_thread(program, name=tid)
    machine_result = machine.run()
    return ReplayResult(
        scheme="lock-elision",
        seed=seed,
        end_time=machine_result.end_time,
        machine_result=machine_result,
        timestamps=collector.timestamps,
        thread_start=collector.thread_start,
        thread_end=collector.thread_end,
        final_memory=machine.memory.snapshot(),
    )
