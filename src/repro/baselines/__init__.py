"""Baselines the paper compares against (dynamic ULCP elimination)."""

from repro.baselines.lock_elision import (
    ABORT_PENALTY_FACTOR,
    elision_programs,
    replay_lock_elision,
)

__all__ = ["replay_lock_elision", "elision_programs", "ABORT_PENALTY_FACTOR"]
