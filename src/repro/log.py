"""Structured logging for the package: one logger tree, two formats.

Every diagnostic the package emits at runtime — worker retries and
quarantines in :mod:`repro.runner.pool`, trace salvage events in
:mod:`repro.trace.serialize`, CLI notices — goes through loggers below
the ``"repro"`` root, so one :func:`configure` call (or the CLI's
``--log-level`` / ``--log-json`` flags) controls all of them.

Records carry structured fields (passed via ``extra=``) plus a
``run_id`` threaded from the :mod:`repro.api` facade: each facade call
opens a :func:`run_scope` naming the entry point, so a grep for
``run_id=debug-0001`` (or the ``"run_id"`` key in ``--log-json``
output) isolates one pipeline invocation.  Run ids are a deterministic
in-process counter, not wall clock, so log *content* stays reproducible.

Nothing here touches the root logger or other libraries' handlers;
without :func:`configure`, warnings and errors still surface through
logging's last-resort stderr handler.
"""

from __future__ import annotations

import itertools
import json
import logging
import sys
from contextlib import contextmanager
from typing import Iterator, Optional

ROOT = "repro"

LEVELS = ("debug", "info", "warning", "error")

#: LogRecord attributes that are bookkeeping, not user-supplied fields
_RESERVED = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__
) | {"message", "asctime", "run_id", "taskName"}

_run_id = ""
_run_counter = itertools.count(1)


def current_run_id() -> str:
    """The run id of the innermost active :func:`run_scope` ("" outside)."""
    return _run_id


@contextmanager
def run_scope(label: str) -> Iterator[str]:
    """Tag every record emitted inside the block with a fresh run id.

    The id is ``"<label>-<NNNN>"`` from a process-wide counter — stable
    content across runs (no wall clock, no pids).  Scopes nest; the
    innermost one wins, and the previous id is restored on exit.
    """
    global _run_id
    token = f"{label}-{next(_run_counter):04d}"
    previous = _run_id
    _run_id = token
    try:
        yield token
    finally:
        _run_id = previous


class _ContextFilter(logging.Filter):
    """Stamp the ambient run id onto records that don't carry one."""

    def filter(self, record: logging.LogRecord) -> bool:
        if not hasattr(record, "run_id"):
            record.run_id = _run_id
        return True


def _fields(record: logging.LogRecord) -> dict:
    """The structured (``extra=``) fields of a record, sorted by key."""
    return {
        key: record.__dict__[key]
        for key in sorted(record.__dict__)
        if key not in _RESERVED
    }


class LineFormatter(logging.Formatter):
    """Human-oriented one-liner: ``repro.pool WARNING message k=v ...``."""

    def format(self, record: logging.LogRecord) -> str:
        parts = [record.name, record.levelname, record.getMessage()]
        run = getattr(record, "run_id", "")
        pairs = _fields(record)
        if run:
            pairs = {"run_id": run, **pairs}
        if pairs:
            parts.append(" ".join(f"{k}={v}" for k, v in pairs.items()))
        text = " ".join(parts)
        if record.exc_info:
            text = f"{text}\n{self.formatException(record.exc_info)}"
        return text


class JsonFormatter(logging.Formatter):
    """One JSON object per line: level, logger, message, fields, run_id."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        run = getattr(record, "run_id", "")
        if run:
            payload["run_id"] = run
        payload.update(_fields(record))
        if record.exc_info:
            payload["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=repr)


class _DynamicStderrHandler(logging.StreamHandler):
    """A stream handler that always writes to the *current* ``sys.stderr``.

    Binding at emit time (instead of at :func:`configure` time) keeps the
    handler correct when the surrounding program swaps ``sys.stderr`` —
    e.g. pytest's capture fixtures replacing the stream per test.
    """

    def __init__(self):
        logging.Handler.__init__(self)

    @property
    def stream(self):
        return sys.stderr


def get_logger(name: str = "") -> logging.Logger:
    """A logger below the package root (``get_logger("runner.pool")``)."""
    return logging.getLogger(f"{ROOT}.{name}" if name else ROOT)


def configure(
    level: str = "warning",
    *,
    json_lines: bool = False,
    stream=None,
) -> logging.Logger:
    """Install (or replace) the package's single stderr handler.

    ``level`` is one of :data:`LEVELS`; ``json_lines`` switches the
    handler to one-JSON-object-per-line output for machine consumption.
    Repeated calls reconfigure in place — there is never more than one
    handler, so records are emitted exactly once.
    """
    if level not in LEVELS:
        raise ValueError(f"unknown log level {level!r} (expected one of {LEVELS})")
    root = logging.getLogger(ROOT)
    for handler in list(root.handlers):
        if getattr(handler, "_repro_handler", False):
            root.removeHandler(handler)
    handler = (
        logging.StreamHandler(stream) if stream is not None
        else _DynamicStderrHandler()
    )
    handler._repro_handler = True
    handler.addFilter(_ContextFilter())
    handler.setFormatter(JsonFormatter() if json_lines else LineFormatter())
    root.addHandler(handler)
    root.setLevel(getattr(logging, level.upper()))
    # the package handler replaces propagation to the (possibly
    # app-configured) root logger; diagnostics are emitted exactly once
    root.propagate = False
    return root
