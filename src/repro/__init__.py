"""PERFPLAY reproduction: replay-based performance debugging of
unnecessary lock contention (Zheng et al., CGO 2015).

The stable public surface is the :mod:`repro.api` facade — five
functions, one per pipeline stage — re-exported here::

    from repro import api

    trace = api.record("mysql", threads=4)
    analysis = api.analyze(trace)       # classify ULCP pairs
    freed = api.transform(trace)        # the ULCP-free trace
    result = api.replay(freed)          # deterministic re-execution
    report = api.debug(trace)           # the whole pipeline, ranked fixes
    print(report.render())

Every facade call takes an optional ``telemetry=`` sink
(:class:`repro.telemetry.Telemetry`) that collects spans and counters
for the run; see :mod:`repro.telemetry`.

Package map (everything below :mod:`repro.api` is internal):

==================  ====================================================
``repro.api``       the stable five-function facade
``repro.telemetry`` spans, counters, exporters (JSON / Prometheus)
``repro.sim``       deterministic discrete-event multicore machine
``repro.trace``     trace events, builder, (de)serialization, validation
``repro.record``    recording phase
``repro.analysis``  ULCP identification, topology RULE 1-4, transform
``repro.replay``    ORIG-S / ELSC-S / SYNC-S / MEM-S replay engine
``repro.perfdebug`` Eq. 1 metrics, Algorithm 2 fusion, Eq. 2 ranking
``repro.races``     Eraser + happens-before detectors (Theorem 1)
``repro.baselines`` lock-elision comparison model
``repro.workloads`` the paper's 16 application models + bug cases
``repro.experiments`` one module per evaluation table/figure
==================  ====================================================
"""

from repro.analysis import TransformResult, UlcpBreakdown, UlcpPair
from repro.errors import (
    DeadlockError,
    ReplayError,
    ReproError,
    SimulationError,
    TraceError,
    TransformError,
    WorkloadError,
)
from repro.perfdebug import DebugReport, PerfPlay
from repro.record import RecordResult, Recorder
from repro.selfcheck import SelfCheckReport, run_selfcheck
from repro.replay import (
    ALL_SCHEMES,
    ELSC_S,
    MEM_S,
    ORIG_S,
    SYNC_S,
    Replayer,
    ReplayResult,
    ReplaySeries,
)
from repro.trace import CodeRegion, CodeSite, Trace, TraceMeta
from repro import api, telemetry
from repro.api import analyze, debug, record, replay, report, transform
from repro.options import AnalyzeOptions, ReplayOptions, ReportOptions

__version__ = "1.0.0"

__all__ = [
    "api",
    "telemetry",
    "record",
    "analyze",
    "transform",
    "replay",
    "debug",
    "report",
    "AnalyzeOptions",
    "ReplayOptions",
    "ReportOptions",
    "PerfPlay",
    "DebugReport",
    "Recorder",
    "RecordResult",
    "run_selfcheck",
    "SelfCheckReport",
    "Replayer",
    "ReplayResult",
    "ReplaySeries",
    "TransformResult",
    "UlcpPair",
    "UlcpBreakdown",
    "Trace",
    "TraceMeta",
    "CodeSite",
    "CodeRegion",
    "ORIG_S",
    "ELSC_S",
    "SYNC_S",
    "MEM_S",
    "ALL_SCHEMES",
    "ReproError",
    "SimulationError",
    "DeadlockError",
    "TraceError",
    "TransformError",
    "ReplayError",
    "WorkloadError",
    "__version__",
]
