"""PERFPLAY reproduction: replay-based performance debugging of
unnecessary lock contention (Zheng et al., CGO 2015).

Quickstart::

    from repro import PerfPlay
    from repro.sim import Acquire, Release, Read, Compute

    def worker():
        yield Compute(100)
        yield Acquire(lock="L")
        yield Read("shared")
        yield Compute(500)
        yield Release(lock="L")

    report = PerfPlay().debug([(worker(), "a"), (worker(), "b")], name="demo")
    print(report.render())

Package map:

==================  ====================================================
``repro.sim``       deterministic discrete-event multicore machine
``repro.trace``     trace events, builder, (de)serialization, validation
``repro.record``    recording phase
``repro.analysis``  ULCP identification, topology RULE 1-4, transform
``repro.replay``    ORIG-S / ELSC-S / SYNC-S / MEM-S replay engine
``repro.perfdebug`` Eq. 1 metrics, Algorithm 2 fusion, Eq. 2 ranking
``repro.races``     Eraser + happens-before detectors (Theorem 1)
``repro.baselines`` lock-elision comparison model
``repro.workloads`` the paper's 16 application models + bug cases
``repro.experiments`` one module per evaluation table/figure
==================  ====================================================
"""

from repro.analysis import TransformResult, UlcpBreakdown, UlcpPair, transform
from repro.errors import (
    DeadlockError,
    ReplayError,
    ReproError,
    SimulationError,
    TraceError,
    TransformError,
    WorkloadError,
)
from repro.perfdebug import DebugReport, PerfPlay
from repro.record import RecordResult, Recorder, record
from repro.selfcheck import SelfCheckReport, run_selfcheck
from repro.replay import (
    ALL_SCHEMES,
    ELSC_S,
    MEM_S,
    ORIG_S,
    SYNC_S,
    Replayer,
    ReplayResult,
    ReplaySeries,
)
from repro.trace import CodeRegion, CodeSite, Trace, TraceMeta

__version__ = "1.0.0"

__all__ = [
    "PerfPlay",
    "DebugReport",
    "Recorder",
    "RecordResult",
    "record",
    "run_selfcheck",
    "SelfCheckReport",
    "Replayer",
    "ReplayResult",
    "ReplaySeries",
    "transform",
    "TransformResult",
    "UlcpPair",
    "UlcpBreakdown",
    "Trace",
    "TraceMeta",
    "CodeSite",
    "CodeRegion",
    "ORIG_S",
    "ELSC_S",
    "SYNC_S",
    "MEM_S",
    "ALL_SCHEMES",
    "ReproError",
    "SimulationError",
    "DeadlockError",
    "TraceError",
    "TransformError",
    "ReplayError",
    "WorkloadError",
    "__version__",
]
