"""Self-check harness: verify the pipeline's invariants on a real input.

``run_selfcheck(workload_or_trace)`` exercises the end-to-end guarantees
this reproduction rests on and reports each as pass/fail:

1.  **determinism** — recording the workload twice with one seed yields
    identical traces;
2.  **serialization** — dump/load round-trips the trace bit-for-bit;
3.  **fidelity** — a zero-jitter ELSC replay reproduces the recorded end
    time exactly;
4.  **transformation** — the ULCP-free trace validates, preserves every
    non-lock event uid, and its topology is acyclic;
5.  **correctness** — original and ULCP-free replays agree on final
    memory, or data races are reported (Theorem 1);
6.  **gain-sanity** — the ULCP-free replay is not materially slower than
    the original (DLS bookkeeping bounds the overshoot).

Exposed on the CLI as ``python -m repro selfcheck <workload>``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.transform import transform
from repro.races.happens_before import transformed_trace_races
from repro.replay.replayer import Replayer
from repro.replay.schemes import ELSC_S
from repro.trace import serialize
from repro.trace.diff import diff_traces
from repro.trace.trace import Trace
from repro.trace.validate import problems


@dataclass
class CheckResult:
    name: str
    passed: bool
    detail: str = ""

    def __str__(self):
        mark = "PASS" if self.passed else "FAIL"
        suffix = f" — {self.detail}" if self.detail else ""
        return f"[{mark}] {self.name}{suffix}"


@dataclass
class SelfCheckReport:
    checks: List[CheckResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(c.passed for c in self.checks)

    def add(self, name: str, passed: bool, detail: str = "") -> None:
        self.checks.append(CheckResult(name=name, passed=passed, detail=detail))

    def render(self) -> str:
        lines = [str(c) for c in self.checks]
        lines.append(
            f"{'all checks passed' if self.ok else 'SELF-CHECK FAILED'} "
            f"({sum(c.passed for c in self.checks)}/{len(self.checks)})"
        )
        return "\n".join(lines)


def run_selfcheck(
    workload=None, *, trace: Optional[Trace] = None, seed: int = 0
) -> SelfCheckReport:
    """Run every invariant check; pass a workload (preferred) or a trace."""
    report = SelfCheckReport()

    if workload is not None:
        # programs() builds fresh generators with re-derived RNG streams,
        # so recording the same workload twice must match exactly
        first = workload.record().trace
        second = workload.record().trace
        determinism = diff_traces(first, second)
        report.add(
            "deterministic recording",
            determinism.identical,
            "" if determinism.identical else determinism.render(limit=3),
        )
        trace = first
    if trace is None:
        raise ValueError("need a workload or a trace")

    issues = problems(trace)
    report.add(
        "trace well-formed", not issues, "; ".join(issues[:3])
    )

    clone = serialize.loads(serialize.dumps(trace))
    round_trip = diff_traces(trace, clone)
    report.add(
        "serialization round-trip",
        round_trip.identical,
        "" if round_trip.identical else round_trip.render(limit=3),
    )

    replayer = Replayer(jitter=0.0)
    replay = replayer.replay(trace, scheme=ELSC_S, seed=seed)
    report.add(
        "ELSC replay reproduces recorded time",
        replay.end_time == trace.end_time,
        f"recorded {trace.end_time}, replayed {replay.end_time}",
    )

    result = transform(trace)
    transform_issues = problems(result.trace)
    report.add(
        "ULCP-free trace well-formed", not transform_issues,
        "; ".join(transform_issues[:3]),
    )
    original_other = [
        e.uid for e in trace.iter_events() if e.kind not in ("acquire", "release")
    ]
    new_other = [
        e.uid
        for e in result.trace.iter_events()
        if e.kind not in ("cs_enter", "cs_exit")
    ]
    report.add("transformation preserves event uids", original_other == new_other)
    try:
        result.topology.toposort()
        report.add("topology acyclic", True)
    except ValueError as exc:
        report.add("topology acyclic", False, str(exc))

    free = replayer.replay_transformed(result, seed=seed)
    memory_ok = replay.final_memory == free.final_memory
    if memory_ok:
        report.add("replays agree on final memory", True)
    else:
        races = transformed_trace_races(result)
        report.add(
            "replays agree on final memory",
            bool(races),
            f"divergence explained by {len(races)} reported race(s)"
            if races
            else "divergence with no reported races",
        )

    overshoot_ok = free.end_time <= replay.end_time * 1.1
    report.add(
        "ULCP-free replay within bounds",
        overshoot_ok,
        f"original {replay.end_time}, free {free.end_time}",
    )

    from repro import kernels

    if kernels.HAVE_NUMPY:
        # the vectorized kernels must be invisible in the output: the
        # same trace transformed under both backends (fresh clones, so
        # neither coasts on the other's scan memo) serializes identically
        active = kernels.backend()
        try:
            kernels.set_backend("numpy")
            vectorized = transform(serialize.loads(serialize.dumps(trace)))
            kernels.set_backend("python")
            pure = transform(serialize.loads(serialize.dumps(trace)))
        finally:
            kernels.set_backend(active)
        report.add(
            "kernel backends agree",
            serialize.dumps(vectorized.trace) == serialize.dumps(pure.trace),
            f"active backend: {active}",
        )
    else:
        report.add(
            "kernel backends agree", True,
            "python only (numpy unavailable)",
        )
    return report
