"""MEM-S: memory-based deterministic schedule (PinPlay / CoreDet style).

Enforces one global total order over *all* shared-memory accesses (the
recorded time order) on top of the recorded lock order.  This is the
strongest — and slowest — enforcement: every access must wait for every
earlier access of any thread, which is why deterministic memory-order
replay systems report 2x-20x slowdowns and why Figure 13 shows MEM-S far
above the other schemes.
"""

from __future__ import annotations

from typing import Dict, List

from repro.replay.elsc import ELSCGate
from repro.trace.events import READ, WRITE
from repro.trace.trace import Trace


def access_order(trace: Trace) -> List[str]:
    """Uids of every shared-memory access, in recorded time order."""
    accesses = [e for e in trace.iter_events() if e.kind in (READ, WRITE)]
    accesses.sort(key=lambda e: (e.t, e.uid))
    return [e.uid for e in accesses]


class MemOrderGate(ELSCGate):
    """ELSC lock order plus a global total order over memory accesses."""

    def __init__(self, lock_schedule: Dict[str, List[str]], order: List[str]):
        super().__init__(lock_schedule)
        self._order = list(order)
        self._position = {uid: i for i, uid in enumerate(self._order)}
        self._next = 0

    @classmethod
    def from_trace(cls, trace: Trace) -> "MemOrderGate":
        return cls(trace.lock_schedule, access_order(trace))

    def may_access(self, tid: str, addr: str, uid: str) -> bool:
        position = self._position.get(uid)
        if position is None:
            return True  # access unknown to the recording: unconstrained
        return position == self._next

    def on_access(self, tid: str, addr: str, uid: str) -> None:
        if self._position.get(uid) == self._next:
            self._next += 1
