"""Timestamp collection during replay.

The collector maps every replayed event uid to its *completion* time in
the replay, plus per-thread start/end times.  Because transformation
preserves uids, the performance metrics can subtract the timestamp of the
same uid across the original and ULCP-free replays (the Δ of Eq. 1).
"""

from __future__ import annotations

from typing import Dict

from repro.sim.observer import NullObserver


class TimestampCollector(NullObserver):
    """Observer recording uid -> completion timestamp."""

    def __init__(self):
        self.timestamps: Dict[str, int] = {}
        self.thread_start: Dict[str, int] = {}
        self.thread_end: Dict[str, int] = {}

    def _stamp(self, uid, t):
        if uid is not None:
            self.timestamps[uid] = t

    def on_thread_start(self, tid, name, t):
        self.thread_start[tid] = t

    def on_thread_end(self, tid, t):
        self.thread_end[tid] = t

    def on_compute(self, tid, t_start, duration, site, uid):
        self._stamp(uid, t_start + duration)

    def on_acquired(self, tid, lock, t_request, t_acquired, site, uid, spin,
                    shared=False):
        self._stamp(uid, t_acquired)

    def on_released(self, tid, lock, t, site, uid):
        self._stamp(uid, t)

    def on_read(self, tid, addr, value, t, site, uid):
        self._stamp(uid, t)

    def on_write(self, tid, addr, op, value_after, t, site, uid):
        self._stamp(uid, t)

    def on_wait_end(self, tid, kind, token, reason, t_start, t_end, site, uid):
        self._stamp(uid, t_end)

    def on_post(self, tid, kind, token, woken, t, site, uid):
        self._stamp(uid, t)

    def on_sleep(self, tid, duration, t, site, uid):
        self._stamp(uid, t + duration)
