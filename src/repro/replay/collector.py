"""Timestamp collection during replay.

The collector maps every replayed event uid to its *completion* time in
the replay, plus per-thread start/end times.  Because transformation
preserves uids, the performance metrics can subtract the timestamp of the
same uid across the original and ULCP-free replays (the Δ of Eq. 1).
"""

from __future__ import annotations

from typing import Dict

from repro.sim.observer import NullObserver


class TimestampCollector(NullObserver):
    """Observer recording uid -> completion timestamp."""

    def __init__(self):
        self.timestamps: Dict[str, int] = {}
        self.thread_start: Dict[str, int] = {}
        self.thread_end: Dict[str, int] = {}

    def _stamp(self, uid, t):
        if uid is not None:
            self.timestamps[uid] = t

    def on_thread_start(self, tid, name, t):
        self.thread_start[tid] = t

    def on_thread_end(self, tid, t):
        self.thread_end[tid] = t

    def on_compute(self, tid, t_start, duration, site, uid, actual=None):
        self._stamp(uid, t_start + duration)

    def on_acquired(self, tid, lock, t_request, t_acquired, site, uid, spin,
                    shared=False):
        self._stamp(uid, t_acquired)

    def on_released(self, tid, lock, t, site, uid):
        self._stamp(uid, t)

    def on_read(self, tid, addr, value, t, site, uid):
        self._stamp(uid, t)

    def on_write(self, tid, addr, op, value_after, t, site, uid):
        self._stamp(uid, t)

    def on_wait_end(self, tid, kind, token, reason, t_start, t_end, site, uid):
        self._stamp(uid, t_end)

    def on_post(self, tid, kind, token, woken, t, site, uid):
        self._stamp(uid, t)

    def on_sleep(self, tid, duration, t, site, uid):
        self._stamp(uid, t + duration)


class IntervalCollector(TimestampCollector):
    """Timestamp collector that also builds live timeline lanes.

    Lanes are keyed by thread *name* (the trace tid under
    :func:`repro.replay.programs.original_programs`) and contain
    :class:`repro.timeline.model.Interval` records whose sums reconcile
    exactly with the machine's per-thread ``cpu_ns``/``spin_ns``/
    ``block_ns`` — including jittered compute (the ``actual`` argument)
    and gate stalls, which a post-hoc trace walk cannot see.

    ``lock_cost``/``mem_cost`` must match the machine's, so the
    per-operation overhead intervals mirror its charges (semaphore and
    cond-release costs arrive as explicit ``on_compute`` events and
    ``on_released`` callbacks — no extra bookkeeping here).
    """

    def __init__(self, lock_cost: int = 0, mem_cost: int = 0):
        super().__init__()
        from repro.timeline.model import Interval  # local: avoid import cycle risk

        self._interval = Interval
        self.lock_cost = lock_cost
        self.mem_cost = mem_cost
        self.intervals: Dict[str, list] = {}
        self._names: Dict[str, str] = {}  # machine tid -> lane key
        self._open_cs: Dict[tuple, list] = {}  # (lane, lock) -> [(t, uid)]
        self._last_owner: Dict[str, str] = {}  # lock -> lane of last releaser
        self._gate_stalls: set = set()  # acquire uids a replay gate vetoed

    def _lane(self, tid):
        name = self._names.get(tid, tid)
        lane = self.intervals.get(name)
        if lane is None:
            lane = self.intervals[name] = []
        return name, lane

    def _add(self, tid, kind, t_start, t_end, **kw):
        name, lane = self._lane(tid)
        lane.append(self._interval(tid=name, kind=kind, t_start=t_start, t_end=t_end, **kw))

    # --------------------------------------------------------- callbacks

    def on_thread_start(self, tid, name, t):
        super().on_thread_start(tid, name, t)
        self._names[tid] = name or tid
        self.intervals.setdefault(name or tid, [])

    def on_compute(self, tid, t_start, duration, site, uid, actual=None):
        super().on_compute(tid, t_start, duration, site, uid)
        charged = actual if actual is not None else duration
        if charged > 0:
            self._add(tid, "compute", t_start, t_start + charged, uid=uid or "")

    def on_gate_stall(self, tid, lock, t, uid):
        self._gate_stalls.add(uid)

    def on_mem_stall(self, tid, addr, t_start, t_end, uid):
        if t_end > t_start:
            self._add(tid, "stall", t_start, t_end, detail=f"mem:{addr}")

    def on_acquired(self, tid, lock, t_request, t_acquired, site, uid, spin,
                    shared=False):
        super().on_acquired(tid, lock, t_request, t_acquired, site, uid, spin, shared)
        if t_acquired > t_request:
            kind = "stall" if uid in self._gate_stalls else "lock_wait"
            self._add(
                tid, kind, t_request, t_acquired,
                lock=lock, uid=uid or "",
                holder=self._last_owner.get(lock, ""), spin=spin,
            )
        self._gate_stalls.discard(uid)
        if self.lock_cost:
            self._add(tid, "overhead", t_acquired, t_acquired + self.lock_cost, lock=lock)
        name, _ = self._lane(tid)
        self._open_cs.setdefault((name, lock), []).append((t_acquired, uid or ""))

    def on_released(self, tid, lock, t, site, uid):
        super().on_released(tid, lock, t, site, uid)
        name, _ = self._lane(tid)
        stack = self._open_cs.get((name, lock))
        if stack:
            t_open, acquire_uid = stack.pop()
            self._add(tid, "cs", t_open, t, lock=lock, uid=acquire_uid)
        self._last_owner[lock] = name
        if self.lock_cost:
            self._add(tid, "overhead", t, t + self.lock_cost, lock=lock)

    def on_read(self, tid, addr, value, t, site, uid):
        super().on_read(tid, addr, value, t, site, uid)
        if self.mem_cost:
            self._add(tid, "overhead", t, t + self.mem_cost)

    def on_write(self, tid, addr, op, value_after, t, site, uid):
        super().on_write(tid, addr, op, value_after, t, site, uid)
        if self.mem_cost:
            self._add(tid, "overhead", t, t + self.mem_cost)

    def on_wait_end(self, tid, kind, token, reason, t_start, t_end, site, uid):
        super().on_wait_end(tid, kind, token, reason, t_start, t_end, site, uid)
        if t_end > t_start:
            self._add(tid, "blocked", t_start, t_end, detail=kind)

    def on_sleep(self, tid, duration, t, site, uid):
        super().on_sleep(tid, duration, t, site, uid)
        if duration > 0:
            self._add(tid, "blocked", t, t + duration, detail="sleep")

    def on_opaque(self, tid, duration, changes, t, site, uid):
        if duration > 0:
            self._add(tid, "blocked", t, t + duration, detail="opaque")
