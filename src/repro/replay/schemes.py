"""The four replay schemes of the evaluation (paper §6.1).

===========  ===============================================================
ORIG-S       parallel replay with no enforcement: lock grants are randomized
             (seeded) and dispatch order jitters, modelling OS-scheduler
             nondeterminism — replay times fluctuate run to run.
ELSC-S       the paper's scheme: per-lock acquisition order pinned to the
             recorded schedule; no other constraint, so the replay tracks
             the original execution with no added cost.
SYNC-S       Kendo-style deterministic lock order for the same input;
             deterministic but adds clock-waiting plus a per-lock-op
             enforcement cost.
MEM-S        PinPlay/CoreDet-style total order over all shared-memory
             accesses; deterministic and much slower (every access pays an
             enforcement cost and global serialization).
===========  ===============================================================

The ``*_OVERHEAD`` constants are cost multipliers calibrating the
*instrumentation* cost of each baseline on the simulated machine; the
*waiting* costs emerge from the gates themselves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ReplayError
from repro.replay.elsc import ELSCGate
from repro.replay.kendo import KendoGate
from repro.replay.memsched import MemOrderGate
from repro.sim.gates import Gate
from repro.sim.policies import FifoPolicy, RandomPolicy, WakePolicy
from repro.trace.trace import Trace
from repro.util.rng import derive_rng

ORIG_S = "ORIG-S"
ELSC_S = "ELSC-S"
SYNC_S = "SYNC-S"
MEM_S = "MEM-S"

ALL_SCHEMES = (MEM_S, SYNC_S, ELSC_S, ORIG_S)

#: SYNC-S pays this factor on every lock operation (deterministic-lock
#: bookkeeping — Kendo reports ~16% app slowdowns).
KENDO_LOCK_OVERHEAD = 4

#: MEM-S pays this factor on every shared-memory access (global-token
#: handoff and instrumentation — PinPlay/CoreDet report 2x-20x whole-program
#: slowdowns, so the per-access factor must be large since accesses are a
#: fraction of execution).
MEM_ACCESS_OVERHEAD = 150


@dataclass
class SchemeSetup:
    """Everything the replayer needs to configure a machine for a scheme."""

    name: str
    gate: Optional[Gate]
    wake_policy: WakePolicy
    sched_rng: Optional[object]
    lock_cost: int
    mem_cost: int


def setup_scheme(scheme: str, trace: Trace, seed: int) -> SchemeSetup:
    """Build the gate/policy/cost configuration for one replay."""
    meta = trace.meta
    if scheme == ORIG_S:
        return SchemeSetup(
            name=scheme,
            gate=None,
            wake_policy=RandomPolicy(derive_rng(seed, "wake")),
            sched_rng=derive_rng(seed, "sched"),
            lock_cost=meta.lock_cost,
            mem_cost=meta.mem_cost,
        )
    if scheme == ELSC_S:
        return SchemeSetup(
            name=scheme,
            gate=ELSCGate(trace.lock_schedule),
            wake_policy=FifoPolicy(),
            sched_rng=None,
            lock_cost=meta.lock_cost,
            mem_cost=meta.mem_cost,
        )
    if scheme == SYNC_S:
        return SchemeSetup(
            name=scheme,
            gate=KendoGate(),
            wake_policy=FifoPolicy(),
            sched_rng=None,
            lock_cost=meta.lock_cost * KENDO_LOCK_OVERHEAD,
            mem_cost=meta.mem_cost,
        )
    if scheme == MEM_S:
        return SchemeSetup(
            name=scheme,
            gate=MemOrderGate.from_trace(trace),
            wake_policy=FifoPolicy(),
            sched_rng=None,
            lock_cost=meta.lock_cost,
            mem_cost=meta.mem_cost * MEM_ACCESS_OVERHEAD,
        )
    raise ReplayError(f"unknown replay scheme {scheme!r}")
