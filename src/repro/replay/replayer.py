"""The replay engine: re-execute traces on the simulated machine.

The replayer reconstructs thread programs from a trace, configures a
machine according to the chosen scheme (gate + wake policy + enforcement
costs), runs it, and returns timing plus per-uid timestamps.

A small physical-timing jitter (default 2%) is applied to every replay's
compute durations: deterministic schemes must show stable end-to-end
times *despite* it (that is the performance-stability claim of Figure
13), while ORIG-S amplifies it through different lock interleavings.
"""

from __future__ import annotations

import warnings
from typing import List, Optional

from repro import telemetry
from repro.analysis.dls import FLAG_CHECK_COST
from repro.analysis.transform import TransformResult
from repro.replay.collector import IntervalCollector, TimestampCollector
from repro.replay.elsc import ELSCGate
from repro.replay.programs import (
    DLS_MODE,
    LOCKSET_MODE,
    aux_lock_schedule,
    original_programs,
    transformed_programs,
)
from repro.replay.results import ReplayResult, ReplaySeries
from repro.replay.schemes import ELSC_S, setup_scheme
from repro.sim.machine import Machine
from repro.sim.policies import FifoPolicy
from repro.trace.trace import Trace
from repro.util.rng import derive_rng


def _replay_task(task):
    """One seeded replay; module-level so the worker pool can pickle it."""
    trace, scheme, seed, jitter = task
    return Replayer(jitter=jitter).replay(trace, scheme=scheme, seed=seed)


class Replayer:
    """Replays original and ULCP-free traces."""

    def __init__(self, *, jitter: float = 0.02):
        self.jitter = jitter

    # ------------------------------------------------------------ original

    def replay(
        self,
        trace: Trace,
        *,
        scheme: str = ELSC_S,
        seed: int = 0,
        timeline: bool = False,
    ) -> ReplayResult:
        """Replay a recorded trace once under ``scheme``.

        ``timeline=True`` collects live interval lanes (compute / cs /
        lock-wait / stall / blocked / overhead) into the result's
        ``intervals`` for :mod:`repro.timeline` to consume.
        """
        setup = setup_scheme(scheme, trace, seed)
        if timeline:
            collector = IntervalCollector(
                lock_cost=setup.lock_cost, mem_cost=setup.mem_cost
            )
        else:
            collector = TimestampCollector()
        machine = Machine(
            num_cores=trace.meta.num_cores,
            observer=collector,
            gate=setup.gate,
            wake_policy=setup.wake_policy,
            sched_rng=setup.sched_rng,
            jitter=self.jitter,
            jitter_rng=derive_rng(seed, "jitter") if self.jitter else None,
            lock_cost=setup.lock_cost,
            mem_cost=setup.mem_cost,
        )
        with telemetry.span("replay.run", scheme=scheme):
            for program, tid in original_programs(trace):
                machine.add_thread(program, name=tid)
            machine_result = machine.run()
        telemetry.count("replay.runs")
        telemetry.count("replay.simulated_ns", machine_result.end_time)
        telemetry.observe("replay.end_ns", machine_result.end_time)
        if isinstance(setup.gate, ELSCGate):
            telemetry.count("replay.elsc_stalls", setup.gate.stalls)
        return ReplayResult(
            scheme=scheme,
            seed=seed,
            end_time=machine_result.end_time,
            machine_result=machine_result,
            timestamps=collector.timestamps,
            thread_start=collector.thread_start,
            thread_end=collector.thread_end,
            final_memory=machine.memory.snapshot(),
            intervals=collector.intervals if timeline else None,
        )

    def replay_many(
        self,
        trace: Trace,
        *,
        scheme: str = ELSC_S,
        runs: int = 10,
        seed: int = 0,
        jobs: int = 1,
        base_seed: Optional[int] = None,
    ) -> ReplaySeries:
        """Replay a trace several times with distinct seeds.

        Seeds are ``seed, seed+1, ...`` (``base_seed`` is the deprecated
        spelling of ``seed``).  ``jobs=N`` fans the repeated replays out
        over a worker pool (each replay is an independent, seeded
        deterministic run); the series order is by seed either way, so
        parallel results are identical to serial ones.
        """
        from repro.runner import parallel_map

        if base_seed is not None:
            warnings.warn(
                "replay_many(... base_seed=) is deprecated; use seed=",
                DeprecationWarning,
                stacklevel=2,
            )
            seed = base_seed
        tasks = [
            (trace, scheme, seed + i, self.jitter) for i in range(runs)
        ]
        series = ReplaySeries(scheme=scheme)
        series.runs.extend(parallel_map(_replay_task, tasks, jobs=jobs))
        return series

    # --------------------------------------------------------- transformed

    def replay_transformed(
        self,
        result: TransformResult,
        *,
        mode: str = DLS_MODE,
        seed: int = 0,
        flag_cost: int = FLAG_CHECK_COST,
        lock_cost: Optional[int] = None,
        timeline: bool = False,
    ) -> ReplayResult:
        """Replay the ULCP-free trace of a transformation.

        ``mode="dls"`` uses END-flag gating with the dynamic locking
        strategy; ``mode="lockset"`` uses full auxiliary-lock locksets
        under an auxiliary ELSC gate (RULE 2's order enforcement).
        ``lock_cost`` overrides the per-lock-operation cost charged inside
        locksets/DLS (defaults to the recording's lock cost).
        """
        trace = result.trace
        meta = trace.meta
        effective_lock_cost = meta.lock_cost if lock_cost is None else lock_cost
        gate = None
        if mode == LOCKSET_MODE:
            gate = ELSCGate(aux_lock_schedule(result.plan))
        if timeline:
            collector = IntervalCollector(
                lock_cost=effective_lock_cost, mem_cost=meta.mem_cost
            )
        else:
            collector = TimestampCollector()
        machine = Machine(
            num_cores=meta.num_cores,
            observer=collector,
            gate=gate,
            wake_policy=FifoPolicy(),
            jitter=self.jitter,
            jitter_rng=derive_rng(seed, "jitter") if self.jitter else None,
            lock_cost=effective_lock_cost,
            mem_cost=meta.mem_cost,
        )
        programs = transformed_programs(
            trace,
            result.plan,
            mode=mode,
            lock_cost=effective_lock_cost,
            flag_cost=flag_cost,
        )
        with telemetry.span("replay.run", scheme=f"ULCP-free/{mode}"):
            for program, tid in programs:
                machine.add_thread(program, name=tid)
            machine_result = machine.run()
        telemetry.count("replay.runs")
        telemetry.count("replay.simulated_ns", machine_result.end_time)
        telemetry.observe("replay.end_ns", machine_result.end_time)
        if isinstance(gate, ELSCGate):
            telemetry.count("replay.elsc_stalls", gate.stalls)
        return ReplayResult(
            scheme=f"ULCP-free/{mode}",
            seed=seed,
            end_time=machine_result.end_time,
            machine_result=machine_result,
            timestamps=collector.timestamps,
            thread_start=collector.thread_start,
            thread_end=collector.thread_end,
            mode=mode,
            final_memory=machine.memory.snapshot(),
            intervals=collector.intervals if timeline else None,
        )

    def replay_transformed_many(
        self,
        result: TransformResult,
        *,
        mode: str = DLS_MODE,
        runs: int = 10,
        base_seed: int = 0,
        flag_cost: int = FLAG_CHECK_COST,
        lock_cost: Optional[int] = None,
    ) -> ReplaySeries:
        series = ReplaySeries(scheme=f"ULCP-free/{mode}")
        for i in range(runs):
            series.runs.append(
                self.replay_transformed(
                    result,
                    mode=mode,
                    seed=base_seed + i,
                    flag_cost=flag_cost,
                    lock_cost=lock_cost,
                )
            )
        return series
