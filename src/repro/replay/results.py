"""Replay results and multi-replay aggregates."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sim.stats import MachineResult
from repro.util.stats import Summary, summarize


@dataclass
class ReplayResult:
    """Outcome of one replay run."""

    scheme: str
    seed: int
    end_time: int
    machine_result: MachineResult
    timestamps: Dict[str, int] = field(default_factory=dict)
    thread_start: Dict[str, int] = field(default_factory=dict)
    thread_end: Dict[str, int] = field(default_factory=dict)
    mode: Optional[str] = None  # dls / lockset for transformed replays
    final_memory: Dict[str, int] = field(default_factory=dict)
    #: per-thread timeline interval lanes (only when the replay ran with
    #: timeline collection; see repro.replay.collector.IntervalCollector)
    intervals: Optional[Dict[str, list]] = None

    def timestamp(self, uid: str) -> Optional[int]:
        return self.timestamps.get(uid)

    @property
    def total_spin_ns(self) -> int:
        return self.machine_result.total_spin_ns

    @property
    def total_block_ns(self) -> int:
        return self.machine_result.total_block_ns


@dataclass
class ReplaySeries:
    """Several replays of the same trace under the same scheme."""

    scheme: str
    runs: List[ReplayResult] = field(default_factory=list)

    @property
    def end_times(self) -> List[int]:
        return [r.end_time for r in self.runs]

    def summary(self) -> Summary:
        return summarize(self.end_times)

    @property
    def mean_time(self) -> float:
        return self.summary().mean

    @property
    def stability(self) -> float:
        """Coefficient of variation across runs (0 = perfectly stable)."""
        return self.summary().cv
