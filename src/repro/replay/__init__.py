"""Replay engine: schemes, gates, program reconstruction, results."""

from repro.replay.collector import TimestampCollector
from repro.replay.elsc import ELSCGate
from repro.replay.kendo import KendoGate
from repro.replay.memsched import MemOrderGate, access_order
from repro.replay.programs import (
    DLS_MODE,
    LOCKSET_MODE,
    aux_lock_schedule,
    original_programs,
    transformed_programs,
)
from repro.replay.replayer import Replayer
from repro.replay.results import ReplayResult, ReplaySeries
from repro.replay.schemes import (
    ALL_SCHEMES,
    ELSC_S,
    KENDO_LOCK_OVERHEAD,
    MEM_ACCESS_OVERHEAD,
    MEM_S,
    ORIG_S,
    SYNC_S,
    SchemeSetup,
    setup_scheme,
)

__all__ = [
    "Replayer",
    "ReplayResult",
    "ReplaySeries",
    "TimestampCollector",
    "ELSCGate",
    "KendoGate",
    "MemOrderGate",
    "access_order",
    "original_programs",
    "transformed_programs",
    "aux_lock_schedule",
    "DLS_MODE",
    "LOCKSET_MODE",
    "ORIG_S",
    "ELSC_S",
    "SYNC_S",
    "MEM_S",
    "ALL_SCHEMES",
    "SchemeSetup",
    "setup_scheme",
    "KENDO_LOCK_OVERHEAD",
    "MEM_ACCESS_OVERHEAD",
]
