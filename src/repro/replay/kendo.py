"""SYNC-S: a Kendo-style deterministic lock scheduler (Olszewski et al.).

Kendo enforces a deterministic total order of lock acquisitions for the
same *input* by letting a thread acquire only when its deterministic
logical clock is globally minimal.  The logical clock advances with
deterministic per-thread progress (requested compute durations and
memory-op costs), so the acquisition order is independent of physical
timing — at the price of extra waiting whenever a thread with a smaller
clock has not yet reached its acquisition point.  That extra waiting is
exactly the overhead Figure 12/13 of the PERFPLAY paper attributes to
input-driven enforcement.

Threads blocked on held locks or asleep are excluded from the minimum
(real Kendo keeps ticking their clocks while they spin; the exclusion is
the discrete-event equivalent and avoids artificial deadlock).
"""

from __future__ import annotations

from typing import Dict

from repro.sim.gates import Gate


class KendoGate(Gate):
    """Deterministic logical-clock lock admission."""

    def __init__(self):
        self._clock: Dict[str, int] = {}
        self._done = set()

    def attach(self, machine) -> None:
        super().attach(machine)

    def on_progress(self, tid: str, amount: int) -> None:
        self._clock[tid] = self._clock.get(tid, 0) + amount

    def on_thread_end(self, tid: str) -> None:
        self._done.add(tid)

    def clock(self, tid: str) -> int:
        return self._clock.get(tid, 0)

    def may_acquire(self, tid: str, lock: str, uid: str) -> bool:
        mine = (self._clock.get(tid, 0), tid)
        for other in self.machine.gate_eligible_tids():
            if other == tid or other in self._done:
                continue
            if (self._clock.get(other, 0), other) < mine:
                return False
        return True

    def on_acquired(self, tid: str, lock: str, uid: str) -> None:
        # Acquisitions themselves advance the clock so a thread taking many
        # locks in a row cannot starve everyone else at the same clock value.
        self._clock[tid] = self._clock.get(tid, 0) + 1
