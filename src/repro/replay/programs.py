"""Reconstruct executable thread programs from traces.

``original_programs`` turns each recorded thread event list back into a
request generator; ``transformed_programs`` does the same for ULCP-free
traces, expanding the ``CS_ENTER``/``CS_EXIT`` markers according to the
chosen synchronization mode:

* ``"dls"`` (default) — predecessor END-flag gating with the dynamic
  locking strategy: each source's END flag is tested (cheap) and only the
  unfinished sources cost a lock acquisition before the wait.
* ``"lockset"`` — full RULE 3/4 locksets: every lockset entry is a real
  auxiliary-lock acquisition (the Table 3 "w/o DLS" configuration).  The
  replay must run under the auxiliary ELSC gate (see
  :func:`aux_lock_schedule`) so RULE 2's partial order holds.

Marker uids are stamped with zero-duration computes so the timestamp
collector sees them in both replays.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.analysis.dls import FLAG_CHECK_COST, end_flag
from repro.analysis.resync import ResyncPlan
from repro.errors import ReplayError
from repro.sim import requests as rq
from repro.trace.events import (
    ACQUIRE,
    COMPUTE,
    CS_ENTER,
    CS_EXIT,
    POST,
    READ,
    RELEASE,
    SLEEP,
    THREAD_END,
    THREAD_START,
    TraceEvent,
    WAIT,
    WRITE,
)
from repro.trace.trace import Trace

DLS_MODE = "dls"
LOCKSET_MODE = "lockset"


def _base_request(event: TraceEvent):
    """The request for a non-marker trace event, or None to skip."""
    if event.kind in (THREAD_START, THREAD_END):
        return None
    if event.kind == COMPUTE:
        return rq.Compute(event.duration, site=event.site, uid=event.uid)
    if event.kind == ACQUIRE:
        return rq.Acquire(
            lock=event.lock, spin=event.spin, shared=event.shared,
            site=event.site, uid=event.uid,
        )
    if event.kind == RELEASE:
        return rq.Release(lock=event.lock, site=event.site, uid=event.uid)
    if event.kind == READ:
        return rq.Read(addr=event.addr, site=event.site, uid=event.uid)
    if event.kind == WRITE:
        from repro.sim.requests import decode_op

        return rq.Write(
            addr=event.addr, op=decode_op(event.op), site=event.site, uid=event.uid
        )
    if event.kind == WAIT:
        if event.reason == "timeout" or event.token is None:
            return rq.Sleep(duration=event.duration, site=event.site, uid=event.uid)
        return rq.AwaitFlag(flag=event.token, site=event.site, uid=event.uid)
    if event.kind == POST:
        return rq.SetFlag(flag=event.token, site=event.site, uid=event.uid)
    if event.kind == SLEEP:
        return rq.Sleep(duration=event.duration, site=event.site, uid=event.uid)
    raise ReplayError(f"cannot replay event kind {event.kind!r} ({event.uid})")


def _original_thread(events: List[TraceEvent], side) -> Iterator:
    for event in events:
        if event.kind == SLEEP and side is not None:
            delta = side.delta_for(event.uid)
            if delta is not None:
                yield rq.Opaque(
                    duration=event.duration, changes=dict(delta.changes),
                    site=event.site, uid=event.uid,
                )
                continue
        request = _base_request(event)
        if request is not None:
            yield request


def original_programs(trace: Trace) -> List[Tuple[Iterator, str]]:
    """One replayable generator per recorded thread, in tid order."""
    side = getattr(trace, "side", None)
    return [
        (_original_thread(events, side), tid)
        for tid, events in trace.threads.items()
    ]


def _dls_enter(cs_uid: str, plan: ResyncPlan, lock_cost: int, flag_cost: int, event):
    # a kept section still synchronizes: entering its own protection costs
    # one lock operation, like the original acquire did (only *removed*
    # sections save their lock costs)
    if lock_cost:
        yield rq.Compute(lock_cost, site=event.site)
    for pred in plan.preds.get(cs_uid, ()):
        flag = end_flag(pred)
        already_done = yield rq.CheckFlag(flag=flag, site=event.site)
        if already_done:
            if flag_cost:
                yield rq.Compute(flag_cost, site=event.site)
        else:
            # unfinished source: its lock stays in the effective lockset
            if lock_cost:
                yield rq.Compute(lock_cost, site=event.site)
            yield rq.AwaitFlag(flag=flag, site=event.site)
    yield rq.Compute(0, site=event.site, uid=event.uid)  # stamp the marker


def _dls_exit(cs_uid: str, plan: ResyncPlan, lock_cost: int, event):
    if lock_cost:
        yield rq.Compute(lock_cost, site=event.site)
    if cs_uid in plan.aux_locks:  # has successors: raise END for them
        yield rq.SetFlag(flag=end_flag(cs_uid), site=event.site)
    yield rq.Compute(0, site=event.site, uid=event.uid)


def _aux_uid(cs_uid: str, lock: str) -> str:
    return f"{cs_uid}@{lock}"


def _lockset_order(lockset: List[str]) -> List[str]:
    """Canonical global acquisition order over aux locks (deadlock-free)."""
    return sorted(lockset, key=lambda name: int(name.lstrip("@L") or 0))


def _lockset_enter(cs_uid: str, plan: ResyncPlan, event):
    for lock in _lockset_order(plan.lockset_of(cs_uid)):
        yield rq.Acquire(lock=lock, site=event.site, uid=_aux_uid(cs_uid, lock))
    yield rq.Compute(0, site=event.site, uid=event.uid)


def _lockset_exit(cs_uid: str, plan: ResyncPlan, event):
    for lock in reversed(_lockset_order(plan.lockset_of(cs_uid))):
        yield rq.Release(lock=lock, site=event.site)
    if cs_uid in plan.aux_locks:
        # END flags still raised so DLS-mode consumers can interoperate
        yield rq.SetFlag(flag=end_flag(cs_uid), site=event.site)
    yield rq.Compute(0, site=event.site, uid=event.uid)


def _transformed_thread(
    events: List[TraceEvent],
    plan: ResyncPlan,
    mode: str,
    lock_cost: int,
    flag_cost: int,
    side,
) -> Iterator:
    for event in events:
        if event.kind == CS_ENTER:
            if mode == DLS_MODE:
                yield from _dls_enter(event.token, plan, lock_cost, flag_cost, event)
            else:
                yield from _lockset_enter(event.token, plan, event)
        elif event.kind == CS_EXIT:
            if mode == DLS_MODE:
                yield from _dls_exit(event.token, plan, lock_cost, event)
            else:
                yield from _lockset_exit(event.token, plan, event)
        else:
            if event.kind == SLEEP and side is not None:
                delta = side.delta_for(event.uid)
                if delta is not None:
                    yield rq.Opaque(
                        duration=event.duration, changes=dict(delta.changes),
                        site=event.site, uid=event.uid,
                    )
                    continue
            request = _base_request(event)
            if request is not None:
                yield request


def transformed_programs(
    trace: Trace,
    plan: ResyncPlan,
    *,
    mode: str = DLS_MODE,
    lock_cost: int = 0,
    flag_cost: int = FLAG_CHECK_COST,
) -> List[Tuple[Iterator, str]]:
    """Replayable generators for a ULCP-free (marker) trace."""
    if mode not in (DLS_MODE, LOCKSET_MODE):
        raise ReplayError(f"unknown transformed-replay mode {mode!r}")
    side = getattr(trace, "side", None)
    return [
        (_transformed_thread(events, plan, mode, lock_cost, flag_cost, side), tid)
        for tid, events in trace.threads.items()
    ]


def aux_lock_schedule(plan: ResyncPlan) -> Dict[str, List[str]]:
    """ELSC schedule over auxiliary locks for lockset-mode replay."""
    return {
        lock: [_aux_uid(cs_uid, lock) for cs_uid in holders]
        for lock, holders in plan.aux_schedule.items()
    }
