"""ELSC: the enforced locking serialization constraint (paper §5.2).

The gate pins, per lock, the total order of acquisitions to the order
observed at *recording* time (schedule-driven, unlike Kendo's
input-driven order).  A thread may acquire a lock only when its acquire
event's uid is the next one in the recorded schedule; everyone else waits
exactly as they would have waited behind the original owner.
"""

from __future__ import annotations

from typing import Dict, List

from repro.sim.gates import Gate


class ELSCGate(Gate):
    """Enforces a recorded per-lock acquisition schedule."""

    def __init__(self, lock_schedule: Dict[str, List[str]]):
        self._schedule = {lock: list(uids) for lock, uids in lock_schedule.items()}
        self._cursor: Dict[str, int] = {lock: 0 for lock in self._schedule}
        #: acquire attempts vetoed because the uid was not next in schedule
        self.stalls = 0

    def may_acquire(self, tid: str, lock: str, uid: str) -> bool:
        schedule = self._schedule.get(lock)
        if schedule is None:
            return True  # lock unknown to the schedule: unconstrained
        cursor = self._cursor[lock]
        if cursor >= len(schedule):
            return True  # schedule exhausted (extra acquires unconstrained)
        if schedule[cursor] != uid:
            self.stalls += 1
            return False
        return True

    def on_acquired(self, tid: str, lock: str, uid: str) -> None:
        schedule = self._schedule.get(lock)
        if schedule is None:
            return
        cursor = self._cursor[lock]
        if cursor < len(schedule) and schedule[cursor] == uid:
            self._cursor[lock] = cursor + 1

    def remaining(self, lock: str) -> int:
        """How many scheduled acquisitions have not happened yet."""
        schedule = self._schedule.get(lock, [])
        return len(schedule) - self._cursor.get(lock, 0)

    def expected(self, lock: str) -> str:
        """The acquire uid the schedule admits next on ``lock`` ("" when
        the lock is unconstrained or its schedule is exhausted) — the
        event a vetoed waiter is stalled *behind* (stall attribution)."""
        schedule = self._schedule.get(lock)
        if schedule is None:
            return ""
        cursor = self._cursor.get(lock, 0)
        return schedule[cursor] if cursor < len(schedule) else ""
