"""Tunable synthetic workloads for controlled experiments.

Unlike the application models (calibrated to Table 1), these expose the
knobs directly: lock utilization, pattern composition, section lengths.
They back the contention-sweep experiment (how does ULCP cost scale with
lock utilization?) and are handy for studying the pipeline itself.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.errors import WorkloadError
from repro.sim.requests import Acquire, Compute, Read, Release, Store, Write
from repro.trace.codesite import CodeSite
from repro.workloads.base import Workload, register


@register
class TunableContention(Workload):
    """Read-read ULCP generator with a directly-set duty cycle.

    ``utilization`` is the fraction of a round spent inside the critical
    section (cs / (cs + gap)); with two threads the expected serialization
    loss grows roughly quadratically in it, which the contention-sweep
    experiment plots.
    """

    name = "tunable-contention"
    category = "synthetic"

    def __init__(self, *, utilization: float = 0.3, rounds: int = 20,
                 round_ns: int = 1000, **kwargs):
        super().__init__(**kwargs)
        if not 0.0 < utilization < 1.0:
            raise WorkloadError("utilization must be in (0, 1)")
        self.utilization = utilization
        self.round_rounds = rounds
        self.round_ns = round_ns

    @property
    def cs_len(self) -> int:
        return max(1, round(self.round_ns * self.utilization))

    @property
    def gap(self) -> int:
        return max(1, self.round_ns - self.cs_len)

    def _worker(self, k: int) -> Iterator:
        rng = self.rng(f"w{k}")
        site = CodeSite("tunable.c", 10, "worker")
        yield Compute(1 + 3 * k)
        for _ in range(self.rounds(self.round_rounds)):
            yield Compute(rng.randint(self.gap // 2, self.gap + self.gap // 2),
                          site=CodeSite("tunable.c", 9, "worker"))
            yield Acquire(lock="hot", site=site)
            yield Read("shared.config", site=CodeSite("tunable.c", 11, "worker"))
            yield Compute(self.cs_len, site=CodeSite("tunable.c", 12, "worker"))
            yield Release(lock="hot", site=CodeSite("tunable.c", 13, "worker"))

    def _init(self) -> Iterator:
        yield Write("shared.config", op=Store(1),
                    site=CodeSite("tunable.c", 1, "init"))

    def programs(self) -> List[Tuple]:
        programs = [(self._worker(k), f"tun-{k}") for k in range(self.threads)]
        programs.append((self._init(), "tun-init"))
        return programs


@register
class MixedBag(Workload):
    """Every ULCP category on one lock, in equal measure.

    Exercises classification and the advisor with maximal ambiguity: the
    same lock carries null, read-read, disjoint-write, benign and true
    conflicts, so per-category attribution has to disentangle them.
    """

    name = "mixed-bag"
    category = "synthetic"

    rounds_per_category = 4

    def _worker(self, k: int) -> Iterator:
        from repro.sim.requests import Add

        rng = self.rng(f"w{k}")
        n = self.rounds(self.rounds_per_category)
        yield Compute(1 + 5 * k)
        # make the disjoint slots shared up front
        yield Acquire(lock="the_lock", site=CodeSite("bag.c", 5, "scan"))
        for s in range(self.threads + 1):
            yield Read(f"bag.slot[{s}]", site=CodeSite("bag.c", 6, "scan"))
        yield Release(lock="the_lock", site=CodeSite("bag.c", 7, "scan"))
        for r in range(n):
            gap = rng.randint(150, 450)
            yield Compute(gap, site=CodeSite("bag.c", 9, "worker"))
            # null
            yield Acquire(lock="the_lock", site=CodeSite("bag.c", 10, "null"))
            yield Release(lock="the_lock", site=CodeSite("bag.c", 11, "null"))
            # read-read
            yield Acquire(lock="the_lock", site=CodeSite("bag.c", 20, "rr"))
            yield Read("bag.meta", site=CodeSite("bag.c", 21, "rr"))
            yield Release(lock="the_lock", site=CodeSite("bag.c", 22, "rr"))
            # disjoint write (constant value: revisits stay benign)
            slot = (k + r * self.threads) % (self.threads + 1)
            yield Acquire(lock="the_lock", site=CodeSite("bag.c", 30, "dw"))
            yield Write(f"bag.slot[{slot}]", op=Store(3),
                        site=CodeSite("bag.c", 31, "dw"))
            yield Release(lock="the_lock", site=CodeSite("bag.c", 32, "dw"))
            # benign commutative add
            yield Acquire(lock="the_lock", site=CodeSite("bag.c", 40, "benign"))
            yield Write("bag.counter", op=Add(1), site=CodeSite("bag.c", 41, "benign"))
            yield Release(lock="the_lock", site=CodeSite("bag.c", 42, "benign"))
            # true conflict
            yield Acquire(lock="the_lock", site=CodeSite("bag.c", 50, "tlcp"))
            yield Read("bag.state", site=CodeSite("bag.c", 51, "tlcp"))
            yield Write("bag.state", op=Store(100 * (k + 1) + r),
                        site=CodeSite("bag.c", 52, "tlcp"))
            yield Release(lock="the_lock", site=CodeSite("bag.c", 53, "tlcp"))

    def _toucher(self) -> Iterator:
        yield Compute(2000, site=CodeSite("bag.c", 60, "monitor"))
        yield Read("bag.meta", site=CodeSite("bag.c", 61, "monitor"))

    def programs(self) -> List[Tuple]:
        programs = [(self._worker(k), f"bag-{k}") for k in range(self.threads)]
        programs.append((self._toucher(), "bag-monitor"))
        return programs
