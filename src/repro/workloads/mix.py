"""Pattern-mix workloads: Table 1 profiles as declarative class attributes.

A declarative alternative to hand-structured models: a subclass mixes the
four ULCP pattern generators plus true conflicts and private locks by
per-thread base round counts, and the zero/non-zero structure and
category ratios follow Table 1 at ~1/100 of the raw counts per thread
(multiply ``scale`` to approach the paper's numbers).  The quiet apps
(blackscholes/canneal/swaptions) use this base; the contended apps have
hand-structured pipeline/barrier models in their own modules, which
supersede the mixes they started as.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.sim.requests import Compute
from repro.trace.codesite import CodeSite
from repro.workloads.base import Workload
from repro.workloads.patterns import (
    benign_add_rounds,
    dw_warmup,
    compute_only_rounds,
    disjoint_write_rounds,
    null_lock_rounds,
    private_lock_rounds,
    read_read_rounds,
    tlcp_rounds,
)


class PatternMixWorkload(Workload):
    """Declarative pattern mix; subclasses set the class attributes."""

    file = "app.c"

    #: per-thread base rounds of each pattern (before size/scale factors)
    null_lock = 0.0
    read_read = 0.0
    disjoint_write = 0.0
    benign = 0.0
    tlcp = 0.0
    #: per-thread rounds on a private (uncontended) lock
    extra_locks = 0.0
    #: per-thread lock-free compute rounds
    pure_compute = 0.0

    #: timing profile
    cs_len = 300
    gap = 150
    compute_work = 400
    #: read-read sections use spin acquisition (CPU-wasting waits)
    spin_reads = False
    #: distinct shared objects behind the disjoint-write uniform reference
    dw_slots = 8
    #: distinct static code regions feeding the shared locks (Table 2's
    #: grouped-ULCP counts come from fusing across these)
    rr_variants = 1
    dw_variants = 1

    def _round_makers(self, k: int, rng) -> List[Tuple[int, object]]:
        """(count, make_round(round_index) -> generator) per active pattern."""
        makers: List[Tuple[int, object]] = []
        if self.pure_compute:
            makers.append((
                self.rounds_fixed(self.pure_compute),
                lambda r: compute_only_rounds(
                    1, file=self.file, line=10, work=self.compute_work, rng=rng
                ),
            ))
        if self.null_lock:
            makers.append((
                self.rounds(self.null_lock),
                lambda r: null_lock_rounds(
                    "nl_lock", 1, file=self.file, line=100, gap=self.gap, rng=rng
                ),
            ))
        if self.read_read:
            makers.append((
                self.rounds(self.read_read),
                lambda r: read_read_rounds(
                    "rr_lock", f"{self.file}:shared_table", 1,
                    file=self.file, line=200, gap=self.gap,
                    cs_len=self.cs_len, rng=rng, spin=self.spin_reads,
                    site_variants=self.rr_variants, start_round=r,
                ),
            ))
        if self.disjoint_write:
            slots = 2 * self.threads + 1
            makers.append((
                self.rounds(self.disjoint_write),
                lambda r: disjoint_write_rounds(
                    "dw_lock", f"{self.file}:obj", slots, k, 1,
                    file=self.file, line=300, gap=self.gap,
                    cs_len=self.cs_len, rng=rng,
                    stride=self.threads, start_round=r,
                    site_variants=self.dw_variants,
                ),
            ))
        if self.benign:
            makers.append((
                self.rounds(self.benign),
                lambda r: benign_add_rounds(
                    "bn_lock", f"{self.file}:counter", 1,
                    file=self.file, line=400, gap=self.gap,
                    cs_len=self.cs_len, rng=rng,
                ),
            ))
        if self.tlcp:
            makers.append((
                self.rounds(self.tlcp),
                lambda r: tlcp_rounds(
                    "tc_lock", f"{self.file}:state", 1,
                    file=self.file, line=500, gap=self.gap,
                    cs_len=self.cs_len, rng=rng,
                    thread_index=k, start_round=r,
                ),
            ))
        if self.extra_locks:
            makers.append((
                self.rounds(self.extra_locks),
                lambda r: private_lock_rounds(
                    "priv", k, 1, file=self.file, line=600,
                    gap=self.gap // 2, cs_len=self.cs_len // 4, rng=rng,
                ),
            ))
        return makers

    def _thread(self, k: int) -> Iterator:
        """Emit all patterns round-robin interleaved (largest remainder).

        Interleaving keeps every thread inside every pattern for the whole
        run, so cross-thread adjacency — the thing pair enumeration counts
        — happens for all categories, not just the longest-running one.
        """
        rng = self.rng(f"thread{k}")
        yield Compute(1 + 17 * k, site=CodeSite(self.file, 1, "start"))
        if self.disjoint_write:
            yield from dw_warmup(
                "dw_lock", f"{self.file}:obj", 2 * self.threads + 1,
                file=self.file, line=290,
            )
        makers = self._round_makers(k, rng)
        counts = [count for count, _ in makers]
        emitted = [0] * len(makers)
        total = sum(counts)
        for step in range(total):
            # pick the pattern lagging most behind its proportional share
            best, best_lag = 0, None
            for i, count in enumerate(counts):
                if emitted[i] >= count:
                    continue
                lag = emitted[i] / count - step / total
                if best_lag is None or lag < best_lag:
                    best, best_lag = i, lag
            yield from makers[best][1](emitted[best])
            emitted[best] += 1

    def programs(self) -> List[Tuple]:
        return [
            (self._thread(k), f"{self.name}-{k}") for k in range(self.threads)
        ]
