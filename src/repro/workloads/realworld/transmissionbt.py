"""transmissionBT: BitTorrent client model (download path).

Modelled as a small peer swarm: each peer thread receives blocks,
checks the shared piece bitfield read-only under the session lock
(read-read), writes its finished pieces into distinct piece slots
(disjoint writes via the uniform piece table), bumps the shared
download-rate accumulator (benign adds), and occasionally polls the
empty UI-event queue (null-locks).  A tracker thread really mutates the
peer list (true conflicts).

Table 1 shows the lightest real-world profile — 352 locks, NL 15 /
RR 111 / DW 123 / benign 29 — reproduced at the documented scaling.
"""

from typing import Iterator, List, Tuple

from repro.sim.requests import (
    Acquire,
    Add,
    Compute,
    Read,
    Release,
    Store,
    Write,
)
from repro.trace.codesite import CodeSite
from repro.workloads.base import Workload, register

FILE = "session.c"


@register
class TransmissionBT(Workload):
    name = "transmissionBT"
    category = "realworld"

    blocks_per_peer = 3
    net_work = 1100
    cs_len = 320
    gap = 800

    def _peer(self, k: int) -> Iterator:
        rng = self.rng(f"peer{k}")
        fn = "tr_peerMgr"
        blocks = self.rounds(self.blocks_per_peer)
        slots = 2 * self.threads + 1
        yield Compute(1 + 9 * k, site=CodeSite(FILE, 100, fn))
        # piece table is verified elsewhere: slots are shared objects
        yield Acquire(lock="session.piece_lock", site=CodeSite(FILE, 102, fn))
        for s in range(slots):
            yield Read(f"piece[{s}]", site=CodeSite(FILE, 103, fn))
        yield Release(lock="session.piece_lock", site=CodeSite(FILE, 105, fn))
        for i in range(blocks):
            # network receive (no locks)
            yield Compute(
                rng.randint(self.net_work // 2, self.net_work),
                site=CodeSite(FILE, 120, "tr_peerIo"),
            )
            # read-only bitfield check under the session lock
            yield Acquire(lock="session.lock", site=CodeSite(FILE, 140, "tr_cpPieceIsComplete"))
            yield Read("torrent.bitfield", site=CodeSite(FILE, 141, "tr_cpPieceIsComplete"))
            yield Compute(self.cs_len, site=CodeSite(FILE, 142, "tr_cpPieceIsComplete"))
            yield Release(lock="session.lock", site=CodeSite(FILE, 144, "tr_cpPieceIsComplete"))
            yield Compute(rng.randint(self.gap // 2, self.gap),
                          site=CodeSite(FILE, 150, fn))
            # finished piece into this round's distinct slot
            slot = (k + i * self.threads) % slots
            yield Acquire(lock="session.piece_lock", site=CodeSite(FILE, 160, fn))
            yield Write(f"piece[{slot}]", op=Store(1), site=CodeSite(FILE, 161, fn))
            yield Release(lock="session.piece_lock", site=CodeSite(FILE, 163, fn))
            if i % 2 == 0:
                # shared download-rate accumulator (commutative)
                yield Acquire(lock="session.stats_lock", site=CodeSite(FILE, 170, "tr_bandwidth"))
                yield Write("stats.downloaded", op=Add(16), site=CodeSite(FILE, 171, "tr_bandwidth"))
                yield Release(lock="session.stats_lock", site=CodeSite(FILE, 173, "tr_bandwidth"))
            if i % 3 == 1:
                # empty UI-event poll (null-lock)
                yield Acquire(lock="session.ui_lock", site=CodeSite(FILE, 180, "tr_sessionEvents"))
                yield Release(lock="session.ui_lock", site=CodeSite(FILE, 182, "tr_sessionEvents"))

    def _tracker(self) -> Iterator:
        rng = self.rng("tracker")
        fn = "tr_announcer"
        for round_ in range(self.rounds(2)):
            yield Compute(rng.randint(1500, 2500), site=CodeSite(FILE, 200, fn))
            yield Acquire(lock="session.lock", site=CodeSite(FILE, 210, fn))
            count = yield Read("torrent.bitfield", site=CodeSite(FILE, 211, fn))
            yield Write("torrent.bitfield", op=Store(count + 1),
                        site=CodeSite(FILE, 212, fn))
            yield Release(lock="session.lock", site=CodeSite(FILE, 214, fn))

    def programs(self) -> List[Tuple]:
        programs = [(self._peer(k), f"bt-peer{k}") for k in range(self.threads)]
        programs.append((self._tracker(), "bt-tracker"))
        return programs
