"""mysql: database server model around the paper's mysql cases.

Three documented ULCP sources (Figures 1, 17 and appendix cases 5/8/9):

* **query-cache timed wait** (bug #68573, Case 9): ``try_lock`` holds
  ``structure_guard_mutex`` and loops on ``mysql_cond_timedwait`` — the
  re-acquisition after each timeout is a null-lock and the wait
  serializes SELECTs;
* **tablespace hash lookups** (bug #69276, Case 8 / Figure 1):
  ``fil_space_get_by_id`` runs read-only under ``fil_system->mutex`` at
  least four times per block read — read-read dominant (Table 1's 9,822);
* **disjoint THD field updates** (bug #73168, Case 5):
  ``set_query_id`` vs ``set_mysys_var`` update different THD members
  under the same ``LOCK_thd_data``.
"""

from typing import Iterator, List, Tuple

from repro.sim.requests import Acquire, Compute, CondWait, Read, Release
from repro.trace.codesite import CodeSite
from repro.workloads.base import Workload, register
from repro.workloads.patterns import (
    benign_add_rounds,
    disjoint_write_rounds,
    dw_warmup,
    null_lock_rounds,
    read_read_rounds,
)

CACHE_FILE = "sql_cache.cc"
FIL_FILE = "fil0fil.cc"
THD_FILE = "sql_class.cc"


def query_cache_try_lock(
    *, waits: int, timeout: int, rng, file: str = CACHE_FILE, line: int = 310
) -> Iterator:
    """Case 9: timed cond-waits inside a held mutex (each timeout's
    wake re-acquires the lock — a null-lock per iteration)."""
    fn = "Query_cache::try_lock"
    yield Acquire(lock="structure_guard_mutex", site=CodeSite(file, line, fn))
    for _ in range(waits):
        yield CondWait(
            cond="COND_cache_status_changed",
            lock="structure_guard_mutex",
            timeout=timeout,
            site=CodeSite(file, line + 4, fn),
        )
    yield Release(lock="structure_guard_mutex", site=CodeSite(file, line + 12, fn))


LOOKUP_FNS = (
    ("fil_space_get_version", 5400),
    ("fil_inc_pending_ops", 5430),
    ("fil_decr_pending_ops", 5460),
    ("fil_space_get_size", 5490),
)


def fil_space_lookups(
    *, rounds: int, rng, file: str = FIL_FILE
) -> Iterator:
    """Case 8 / Figure 1: four read-only hash lookups per block read, each
    from its own function (distinct code regions for Algorithm 2)."""
    for _ in range(rounds):
        yield Compute(rng.randint(200, 420), site=CodeSite(file, 5395, "fil_io"))
        for fn, line in LOOKUP_FNS:
            yield Acquire(lock="fil_system.mutex", site=CodeSite(file, line, fn))
            yield Read("fil_system.spaces", site=CodeSite(file, line + 2, fn))
            yield Compute(90, site=CodeSite(file, line + 10, fn))
            yield Release(lock="fil_system.mutex", site=CodeSite(file, line + 28, fn))
            yield Compute(rng.randint(260, 480), site=CodeSite(file, line + 30, fn))


@register
class Mysql(Workload):
    name = "mysql"
    category = "realworld"

    #: per-thread base counts (Table 1 / 100): RR 9,822 -> ~98 lookups,
    #: DW 2,924 -> ~29, NL 125 -> ~1.3, benign 194 -> ~2.
    lookup_blocks = 16  # x4 lookups each = 64 read-read sections
    disjoint_write = 29
    null_lock = 1.3
    benign = 2.0
    cache_waits = 2
    cache_timeout = 900

    def _session(self, k: int) -> Iterator:
        rng = self.rng(f"session{k}")
        yield Compute(1 + 11 * k)
        yield from query_cache_try_lock(
            waits=self.cache_waits, timeout=self.cache_timeout, rng=rng
        )
        yield from fil_space_lookups(
            rounds=self.rounds(self.lookup_blocks), rng=rng
        )
        yield from dw_warmup(
            "LOCK_thd_data", "thd.field", 2 * self.threads + 1,
            file=THD_FILE, line=4518,
        )
        yield from disjoint_write_rounds(
            "LOCK_thd_data", "thd.field", 2 * self.threads + 1, k,
            self.rounds(self.disjoint_write),
            file=THD_FILE, line=4526, gap=520, cs_len=160, rng=rng,
            fn="THD::set_field", stride=self.threads, site_variants=5,
        )
        yield from null_lock_rounds(
            "LOCK_status", self.rounds(self.null_lock),
            file="mysqld.cc", line=7003, gap=420, rng=rng,
        )
        yield from benign_add_rounds(
            "LOCK_stats", "status.questions", self.rounds(self.benign),
            file="mysqld.cc", line=7101, gap=420, cs_len=110, rng=rng,
        )

    def _writer(self) -> Iterator:
        """One thread that really mutates the tablespace map (TLCP source)."""
        rng = self.rng("writer")
        from repro.sim.requests import Store, Write

        yield Compute(900, site=CodeSite(FIL_FILE, 5560, "fil_flush_file_spaces"))
        yield Acquire(lock="fil_system.mutex", site=CodeSite(FIL_FILE, 5609, "fil_flush_file_spaces"))
        yield Write("fil_system.spaces", op=Store(1), site=CodeSite(FIL_FILE, 5611, "fil_flush_file_spaces"))
        yield Release(lock="fil_system.mutex", site=CodeSite(FIL_FILE, 5614, "fil_flush_file_spaces"))

    def programs(self) -> List[Tuple]:
        programs = [(self._session(k), f"mysql-s{k}") for k in range(self.threads)]
        programs.append((self._writer(), "mysql-flush"))
        return programs
