"""pbzip2: parallel bzip2 model around the Figure 18 consumer idiom.

The producer reads the file into blocks (a semaphore hands them to
consumers); consumers compress blocks in parallel and write distinct
output slots (disjoint writes under the output lock).  The paper's
#BUG 2 is the shutdown check: every consumer repeatedly takes ``mu`` to
read ``fifo.empty`` and then nests ``muDone`` to read ``producerDone``
— read-read ULCPs with extra nested-lock overhead that serialize the
thread joins.
"""

from typing import Iterator, List, Tuple

from repro.sim.requests import (
    Acquire,
    Compute,
    Read,
    Release,
    SemAcquire,
    SemRelease,
    Store,
    Write,
)
from repro.trace.codesite import CodeSite
from repro.workloads.base import Workload, register

FILE = "pbzip2.cpp"


def consumer_done_check(*, rng, polls: int = 1) -> Iterator:
    """Figure 18: nested read-read check of fifo.empty / producerDone."""
    fn = "consumer"
    for _ in range(polls):
        yield Acquire(lock="mu", site=CodeSite(FILE, 2109, fn))
        yield Read("fifo.empty", site=CodeSite(FILE, 2122, fn))
        yield Acquire(lock="muDone", site=CodeSite(FILE, 534, "syncGetProducerDone"))
        yield Read("producerDone", site=CodeSite(FILE, 535, "syncGetProducerDone"))
        yield Release(lock="muDone", site=CodeSite(FILE, 536, "syncGetProducerDone"))
        yield Release(lock="mu", site=CodeSite(FILE, 2124, fn))


@register
class Pbzip2(Workload):
    name = "pbzip2"
    category = "realworld"

    blocks_per_consumer = 9
    block_read_work = 260
    compress_work = 900
    done_polls = 3

    @property
    def total_blocks(self) -> int:
        return self.rounds(self.blocks_per_consumer) * self.threads

    def _producer(self) -> Iterator:
        rng = self.rng("producer")
        fn = "producer"
        for i in range(self.total_blocks):
            yield Compute(
                rng.randint(self.block_read_work // 2, self.block_read_work),
                site=CodeSite(FILE, 1802, fn),
            )
            yield Acquire(lock="mu", site=CodeSite(FILE, 1815, fn))
            yield Write(f"fifo.block[{i}]", op=Store(i + 1), site=CodeSite(FILE, 1818, fn))
            yield Release(lock="mu", site=CodeSite(FILE, 1825, fn))
            yield SemRelease(sem="fifo.items", site=CodeSite(FILE, 1827, fn))
        # end stage: mark completion (true conflicts with the last checks)
        yield Acquire(lock="muDone", site=CodeSite(FILE, 527, "syncSetProducerDone"))
        yield Write("producerDone", op=Store(1), site=CodeSite(FILE, 528, "syncSetProducerDone"))
        yield Release(lock="muDone", site=CodeSite(FILE, 529, "syncSetProducerDone"))
        yield Acquire(lock="mu", site=CodeSite(FILE, 1890, fn))
        yield Write("fifo.empty", op=Store(1), site=CodeSite(FILE, 1891, fn))
        yield Release(lock="mu", site=CodeSite(FILE, 1892, fn))

    def _consumer(self, k: int) -> Iterator:
        rng = self.rng(f"consumer{k}")
        fn = "consumer"
        my_blocks = self.rounds(self.blocks_per_consumer)
        for i in range(my_blocks):
            yield SemAcquire(sem="fifo.items", site=CodeSite(FILE, 2090, fn))
            yield Acquire(lock="mu", site=CodeSite(FILE, 2095, fn))
            yield Read("fifo.head", site=CodeSite(FILE, 2096, fn))
            yield Read(f"fifo.block[{k * my_blocks + i}]", site=CodeSite(FILE, 2097, fn))
            yield Release(lock="mu", site=CodeSite(FILE, 2099, fn))
            yield Compute(
                rng.randint(self.compress_work // 2, self.compress_work),
                site=CodeSite(FILE, 2140, "BZ2_compress"),
            )
            yield Acquire(lock="out_mu", site=CodeSite(FILE, 2160, fn))
            yield Write(
                f"out.block[{k * my_blocks + i}]", op=Store(1),
                site=CodeSite(FILE, 2161, fn),
            )
            yield Release(lock="out_mu", site=CodeSite(FILE, 2164, fn))
            yield SemRelease(sem="out.items", site=CodeSite(FILE, 2166, fn))
            # BUG 2: the shutdown check runs on every dequeue
            yield from consumer_done_check(rng=rng, polls=self.done_polls)

    def _muxer(self) -> Iterator:
        """The output writer: drains compressed blocks to the file in
        completion order (it reads what consumers wrote, making the
        output slots genuinely shared)."""
        rng = self.rng("muxer")
        fn = "fileWriter"
        my_blocks = self.rounds(self.blocks_per_consumer)
        order = [
            k * my_blocks + i
            for i in range(my_blocks)
            for k in range(self.threads)
        ]
        for slot in order:
            yield SemAcquire(sem="out.items", site=CodeSite(FILE, 2301, fn))
            yield Acquire(lock="out_mu", site=CodeSite(FILE, 2304, fn))
            yield Read(f"out.block[{slot}]", site=CodeSite(FILE, 2306, fn))
            yield Release(lock="out_mu", site=CodeSite(FILE, 2309, fn))
            yield Compute(rng.randint(60, 140), site=CodeSite(FILE, 2312, fn))

    def programs(self) -> List[Tuple]:
        programs = [(self._consumer(k), f"pbzip2-c{k}") for k in range(self.threads)]
        programs.append((self._producer(), "pbzip2-producer"))
        programs.append((self._muxer(), "pbzip2-muxer"))
        return programs
