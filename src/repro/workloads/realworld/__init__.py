"""Real-world application models: openldap, mysql, pbzip2,
transmissionBT, handbrake — each built around the actual ULCP patterns
the paper documents for it (Figures 1, 4, 17, 18 and the appendix cases),
plus a Table 1-calibrated background mix."""

from repro.workloads.realworld.handbrake import Handbrake
from repro.workloads.realworld.mysql import Mysql
from repro.workloads.realworld.openldap import Openldap
from repro.workloads.realworld.pbzip2 import Pbzip2
from repro.workloads.realworld.transmissionbt import TransmissionBT

REALWORLD_WORKLOADS = (Openldap, Mysql, Pbzip2, TransmissionBT, Handbrake)

__all__ = [cls.__name__ for cls in REALWORLD_WORKLOADS] + ["REALWORLD_WORKLOADS"]
