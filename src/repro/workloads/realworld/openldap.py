"""openldap: LDAP server model around the Figure 4 spin-wait.

The signature ULCP (the paper's #BUG 1) is ``dbmfp->ref`` polling:
worker threads repeatedly take ``dbmp->mutex`` just to *read* the
reference count, spinning until the last holder drops it.  Every pair of
polling sections is a read-read ULCP, and the waits burn CPU.  A closer
thread releases the reference after finishing its (long) work.

Background traffic adds the remaining Table 1 categories
(NL 75 / RR 1,414 / DW 473 / benign 15 at 1/100 per thread).
"""

from typing import Iterator, List, Tuple

from repro.sim.requests import Acquire, Compute, Read, Release, Store, Write
from repro.trace.codesite import CodeSite
from repro.workloads.base import Workload, register
from repro.workloads.patterns import (
    benign_add_rounds,
    disjoint_write_rounds,
    dw_warmup,
    null_lock_rounds,
    read_read_rounds,
)

MP_FILE = "mp_fopen.c"


def spin_wait_refcount(
    *,
    ref_addr: str = "dbmfp.ref",
    lock: str = "dbmp.mutex",
    max_polls: int,
    poll_gap: int,
    rng,
    file: str = MP_FILE,
    line: int = 654,
) -> Iterator:
    """Figure 4's loop: lock, read ref, unlock, retry until ref == 1."""
    lock_site = CodeSite(file, line, "__memp_fclose")
    read_site = CodeSite(file, line + 2, "__memp_fclose")
    unlock_site = CodeSite(file, line + 6, "__memp_fclose")
    for _ in range(max_polls):
        yield Acquire(lock=lock, spin=True, site=lock_site)
        ref = yield Read(ref_addr, site=read_site)
        yield Release(lock=lock, site=unlock_site)
        if ref == 1:
            break
        yield Compute(poll_gap, site=CodeSite(file, line + 8, "__memp_fclose"))


def release_refcount(
    *,
    ref_addr: str = "dbmfp.ref",
    lock: str = "dbmp.mutex",
    work: int,
    file: str = MP_FILE,
    line: int = 620,
) -> Iterator:
    """The critical thread: long work, then drop the reference."""
    yield Compute(work, site=CodeSite(file, line, "__memp_sync"))
    yield Acquire(lock=lock, site=CodeSite(file, line + 2, "__memp_sync"))
    yield Write(ref_addr, op=Store(1), site=CodeSite(file, line + 3, "__memp_sync"))
    yield Release(lock=lock, site=CodeSite(file, line + 4, "__memp_sync"))


@register
class Openldap(Workload):
    name = "openldap"
    category = "realworld"

    #: per-thread base counts (Table 1 / 100)
    null_lock = 0.8
    background_rr = 6.0
    disjoint_write = 4.7
    benign = 0.5
    max_polls = 9
    poll_gap = 260
    closer_work = 2600

    def _worker(self, k: int) -> Iterator:
        rng = self.rng(f"worker{k}")
        yield Compute(1 + 13 * k)
        yield from spin_wait_refcount(
            max_polls=self.rounds(self.max_polls),
            poll_gap=self.poll_gap,
            rng=rng,
        )
        yield from read_read_rounds(
            "slapd.conn_lock", "connections.table",
            self.rounds(self.background_rr),
            file="connection.c", line=210, gap=850, cs_len=240, rng=rng,
            site_variants=3,
        )
        yield from dw_warmup(
            "slapd.op_lock", "op.slot", 2 * self.threads + 1,
            file="operation.c", line=80,
        )
        yield from disjoint_write_rounds(
            "slapd.op_lock", "op.slot", 2 * self.threads + 1, k,
            self.rounds(self.disjoint_write),
            file="operation.c", line=88, gap=850, cs_len=240, rng=rng,
            stride=self.threads, site_variants=2,
        )
        yield from null_lock_rounds(
            "slapd.stats_lock", self.rounds(self.null_lock),
            file="result.c", line=30, gap=500, rng=rng,
        )
        yield from benign_add_rounds(
            "slapd.counter_lock", "stats.ops", self.rounds(self.benign),
            file="result.c", line=70, gap=500, cs_len=120, rng=rng,
        )

    def _closer(self) -> Iterator:
        yield from release_refcount(
            work=round(self.closer_work * self.size_factor * self.scale)
        )

    def programs(self) -> List[Tuple]:
        programs = [(self._worker(k), f"ldap-w{k}") for k in range(self.threads)]
        programs.append((self._closer(), "ldap-closer"))
        return programs
