"""handBrake: video transcoder (DVD -> MP4, H.264).

Modelled as the transcode pipeline: a *demux* thread queues source
frames through a semaphore; *encoder workers* consult the shared codec
context read-only on every frame (read-read, Table 1's 1,536), write
their encoded frames into distinct slots of the output ring via the
uniform reference (disjoint writes, 1,143), bump the commutative
progress counter (benign, 189), and occasionally probe the empty
subtitle track (null-locks, 10).  Per-frame scratch buffers use private
locks — handbrake's 18,316 dynamic acquisitions with comparatively few
ULCPs.
"""

from typing import Iterator, List, Tuple

from repro.sim.requests import (
    Acquire,
    Add,
    Compute,
    Read,
    Release,
    SemAcquire,
    SemRelease,
    Store,
    Write,
)
from repro.trace.codesite import CodeSite
from repro.workloads.base import Workload, register
from repro.workloads.patterns import private_lock_rounds

FILE = "encavcodec.c"


@register
class Handbrake(Workload):
    name = "handbrake"
    category = "realworld"

    frames_per_worker = 14
    demux_work = 240
    encode_work = 850
    cs_len = 240
    gap = 650
    scratch_rounds_per_frame = 6

    @property
    def total_frames(self) -> int:
        return self.rounds(self.frames_per_worker) * self.threads

    def _demux(self) -> Iterator:
        rng = self.rng("demux")
        fn = "reader_io"
        for i in range(self.total_frames):
            yield Compute(rng.randint(self.demux_work // 2, self.demux_work),
                          site=CodeSite(FILE, 60, fn))
            yield Acquire(lock="fifo.lock", site=CodeSite(FILE, 70, fn))
            yield Write(f"src_frame[{i}]", op=Store(i + 1), site=CodeSite(FILE, 71, fn))
            yield Release(lock="fifo.lock", site=CodeSite(FILE, 73, fn))
            yield SemRelease(sem="fifo.items", site=CodeSite(FILE, 75, fn))

    def _encoder(self, k: int) -> Iterator:
        rng = self.rng(f"enc{k}")
        fn = "encavcodecWork"
        frames = self.rounds(self.frames_per_worker)
        slots = 2 * self.threads + 1
        yield Compute(1 + 7 * k, site=CodeSite(FILE, 100, fn))
        yield Acquire(lock="out.ring_lock", site=CodeSite(FILE, 102, fn))
        for s in range(slots):
            yield Read(f"out_ring[{s}]", site=CodeSite(FILE, 103, fn))
        yield Release(lock="out.ring_lock", site=CodeSite(FILE, 105, fn))
        for i in range(frames):
            yield SemAcquire(sem="fifo.items", site=CodeSite(FILE, 110, fn))
            yield Acquire(lock="fifo.lock", site=CodeSite(FILE, 112, fn))
            yield Read(f"src_frame[{k * frames + i}]", site=CodeSite(FILE, 113, fn))
            yield Release(lock="fifo.lock", site=CodeSite(FILE, 115, fn))
            # shared codec context, consulted read-only on every frame
            yield Acquire(lock="codec.lock", site=CodeSite(FILE, 130, "hb_avcodec"))
            yield Read("codec.context", site=CodeSite(FILE, 131, "hb_avcodec"))
            yield Compute(self.cs_len, site=CodeSite(FILE, 132, "hb_avcodec"))
            yield Release(lock="codec.lock", site=CodeSite(FILE, 134, "hb_avcodec"))
            yield Compute(
                rng.randint(self.encode_work // 2, self.encode_work),
                site=CodeSite(FILE, 150, fn),
            )
            # encoded frame into a distinct slot of the output ring
            slot = (k + i * self.threads) % slots
            yield Acquire(lock="out.ring_lock", site=CodeSite(FILE, 160, fn))
            yield Write(f"out_ring[{slot}]", op=Store(2), site=CodeSite(FILE, 161, fn))
            yield Release(lock="out.ring_lock", site=CodeSite(FILE, 163, fn))
            if i % 3 == 1:
                # commutative progress accounting (benign)
                yield Acquire(lock="job.progress_lock", site=CodeSite(FILE, 170, fn))
                yield Write("job.frames_done", op=Add(1), site=CodeSite(FILE, 171, fn))
                yield Release(lock="job.progress_lock", site=CodeSite(FILE, 173, fn))
            if i % 13 == 7:
                # empty subtitle-track probe (null-lock)
                yield Acquire(lock="subtitle.lock", site=CodeSite(FILE, 180, fn))
                yield Release(lock="subtitle.lock", site=CodeSite(FILE, 182, fn))
            yield Compute(rng.randint(self.gap // 2, self.gap),
                          site=CodeSite(FILE, 190, fn))
            yield from private_lock_rounds(
                "hb.scratch", k, self.rounds(self.scratch_rounds_per_frame),
                file=FILE, line=200, gap=self.gap // 3, cs_len=60, rng=rng,
            )

    def programs(self) -> List[Tuple]:
        programs = [(self._encoder(k), f"hb-{k}") for k in range(self.threads)]
        programs.append((self._demux(), "hb-demux"))
        return programs
