"""Workload abstraction and registry.

A workload is a parameterized multi-threaded program model that runs on
the simulated machine.  Each of the paper's 16 evaluated applications
(5 real-world + 11 PARSEC) is a workload whose locking behaviour is
calibrated to the pattern profile of Table 1: same zero/non-zero
structure, same dominant ULCP categories, counts scaled down by a fixed
factor so a trace records in milliseconds instead of minutes (see
EXPERIMENTS.md for the scaling discussion — crank ``scale`` up to
approach the paper's raw counts).

Parameters every workload shares:

* ``threads``     — worker thread count (the paper evaluates 2-32),
* ``input_size``  — ``simsmall`` / ``simmedium`` / ``simlarge`` (PARSEC
  input names; they scale the iteration counts),
* ``scale``       — additional global multiplier on iteration counts,
* ``seed``        — root of every RNG stream the workload draws from.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Type

from repro.errors import WorkloadError
from repro.record.recorder import Recorder, RecordResult
from repro.util.rng import derive_rng

INPUT_SIZES = {"simsmall": 0.25, "simmedium": 0.5, "simlarge": 1.0}


class Workload:
    """Base class for application models."""

    #: registry key; subclasses must override.
    name: str = "abstract"
    #: "realworld", "parsec", "synthetic", or "bug".
    category: str = "generic"

    def __init__(
        self,
        *,
        threads: int = 2,
        input_size: str = "simlarge",
        scale: float = 1.0,
        seed: int = 0,
    ):
        if threads < 1:
            raise WorkloadError(f"{self.name}: needs at least one thread")
        if input_size not in INPUT_SIZES:
            raise WorkloadError(
                f"{self.name}: unknown input size {input_size!r} "
                f"(expected one of {sorted(INPUT_SIZES)})"
            )
        if scale <= 0:
            raise WorkloadError(f"{self.name}: scale must be positive")
        self.threads = threads
        self.input_size = input_size
        self.scale = scale
        self.seed = seed

    # ------------------------------------------------------------- helpers

    @property
    def size_factor(self) -> float:
        return INPUT_SIZES[self.input_size]

    def rounds(self, base: float) -> int:
        """Scale a base iteration count by input size and global scale."""
        return max(1, round(base * self.size_factor * self.scale))

    def rounds_fixed(self, base: float) -> int:
        """Scale by ``scale`` only — work that does *not* grow with input
        (startup, fixed serial phases).  Locking hot loops grow with the
        input while this does not, which is why the paper's Figure 16
        sees ULCP impact rise with input size."""
        return max(1, round(base * self.scale))

    def rng(self, *labels: str):
        """A deterministic RNG stream private to (workload, seed, labels)."""
        return derive_rng(self.seed, self.name, *labels)

    # ----------------------------------------------------------- interface

    def programs(self) -> List[Tuple]:
        """(generator, thread-name) pairs to run on the machine."""
        raise NotImplementedError

    def semaphores(self) -> Dict[str, int]:
        """Pre-charged semaphores the programs expect."""
        return {}

    def params(self) -> dict:
        return {
            "workload": self.name,
            "threads": self.threads,
            "input_size": self.input_size,
            "scale": self.scale,
        }

    def record(
        self,
        *,
        num_cores: int = 8,
        lock_cost: int = None,
        mem_cost: int = None,
    ) -> RecordResult:
        """Record one execution of this workload into a trace."""
        from repro.sim.timebase import DEFAULT_LOCK_COST, DEFAULT_MEM_COST

        recorder = Recorder(
            num_cores=num_cores,
            lock_cost=DEFAULT_LOCK_COST if lock_cost is None else lock_cost,
            mem_cost=DEFAULT_MEM_COST if mem_cost is None else mem_cost,
        )
        return recorder.record(
            self.programs(),
            name=self.name,
            seed=self.seed,
            params=self.params(),
            semaphores=self.semaphores(),
        )


_REGISTRY: Dict[str, Type[Workload]] = {}


def register(cls: Type[Workload]) -> Type[Workload]:
    """Class decorator adding a workload to the global registry."""
    if cls.name in _REGISTRY:
        raise WorkloadError(f"duplicate workload name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def get_workload(name: str, **kwargs) -> Workload:
    """Instantiate a registered workload by name."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise WorkloadError(f"unknown workload {name!r} (known: {known})") from None
    return cls(**kwargs)


def workload_names(category: Optional[str] = None) -> List[str]:
    """Registered names, optionally filtered by category."""
    names = [
        name
        for name, cls in _REGISTRY.items()
        if category is None or cls.category == category
    ]
    return sorted(names)
