"""Reusable locking-pattern generators (the four ULCP shapes + friends).

Each helper yields the request stream of one thread's rounds of a
pattern.  Patterns are parameterized by code site (file + base line) so
the fusion/recommendation pipeline can attribute every dynamic pair back
to its static region, exactly like the paper's per-code-site grouping.

All randomness comes from the caller-provided ``rng`` (gap jitter only —
structure is deterministic).
"""

from __future__ import annotations

from repro.sim.requests import Acquire, Add, Compute, Read, Release, Store, Write
from repro.trace.codesite import CodeSite


def _gap(rng, gap: int) -> int:
    """A jittered inter-round think time."""
    if gap <= 0:
        return 0
    return rng.randint(max(1, gap // 2), gap + gap // 2)


def null_lock_rounds(lock, rounds, *, file, line, gap, rng, fn="null_lock"):
    """Figure 3's shape: lock/unlock around a branch that never executes."""
    lock_site = CodeSite(file, line, fn)
    unlock_site = CodeSite(file, line + 3, fn)
    for _ in range(rounds):
        think = _gap(rng, gap)
        if think:
            yield Compute(think, site=CodeSite(file, line - 1, fn))
        yield Acquire(lock=lock, site=lock_site)
        # if (local_variable) shared_variable++;   -- local is false
        yield Release(lock=lock, site=unlock_site)


def read_read_rounds(
    lock, addr, rounds, *, file, line, gap, cs_len, rng, fn="reader",
    spin=False, site_variants=1, start_round=0,
):
    """Read-only critical sections on shared data (Figure 4's shape).

    ``site_variants`` spreads rounds over that many distinct static code
    regions (40 lines apart), modelling several call sites sharing one
    lock — this is what gives Algorithm 2 several groups to fuse.
    """
    for i in range(rounds):
        r = start_round + i
        base = line + 40 * (r % site_variants)
        think = _gap(rng, gap)
        if think:
            yield Compute(think, site=CodeSite(file, base - 1, fn))
        yield Acquire(lock=lock, site=CodeSite(file, base, fn), spin=spin)
        yield Read(addr, site=CodeSite(file, base + 1, fn))
        if cs_len:
            yield Compute(cs_len, site=CodeSite(file, base + 2, fn))
        yield Release(lock=lock, site=CodeSite(file, base + 3, fn))


def disjoint_write_rounds(
    lock,
    slot_prefix,
    slot_count,
    start_slot,
    rounds,
    *,
    file,
    line,
    gap,
    cs_len,
    rng,
    fn="updater",
    value=7,
    stride=1,
    start_round=0,
    site_variants=1,
):
    """Disjoint writes via a uniform reference (pointer-alias shape).

    Round ``r`` of the thread starting at ``start_slot`` writes slot
    ``(start_slot + r*stride) % slot_count``.  With ``stride`` set to the
    thread count and ``slot_count`` odd/coprime (the mix uses 2T+1),
    threads in the same round always write *different* shared objects
    (disjoint-write pairs), yet every slot is revisited by another thread
    two rounds later, which makes the slots genuinely shared.  The stored
    value is constant, so those delayed revisits are benign, not true
    conflicts.
    """
    for i in range(rounds):
        r = start_round + i
        base = line + 40 * (r % site_variants)
        think = _gap(rng, gap)
        if think:
            yield Compute(think, site=CodeSite(file, base - 1, fn))
        slot = (start_slot + r * stride) % slot_count
        yield Acquire(lock=lock, site=CodeSite(file, base, fn))
        yield Write(
            f"{slot_prefix}[{slot}]", op=Store(value),
            site=CodeSite(file, base + 1, fn),
        )
        if cs_len:
            yield Compute(cs_len, site=CodeSite(file, base + 2, fn))
        yield Release(lock=lock, site=CodeSite(file, base + 3, fn))


def dw_warmup(lock, slot_prefix, slot_count, *, file, line, fn="scan"):
    """One read-only scan of every slot behind the uniform reference.

    Emitted once per thread before its disjoint-write rounds: it makes
    every slot genuinely *shared* (so Algorithm 1 sees the writes) the
    way real code does when the objects are displayed or checkpointed
    elsewhere.  The scan truly conflicts with the writers, so it costs a
    few TLCP edges — negligible and realistic.
    """
    yield Acquire(lock=lock, site=CodeSite(file, line, fn))
    for slot in range(slot_count):
        yield Read(f"{slot_prefix}[{slot}]", site=CodeSite(file, line + 1, fn))
    yield Release(lock=lock, site=CodeSite(file, line + 2, fn))


def benign_add_rounds(
    lock, addr, rounds, *, file, line, gap, cs_len, rng, fn="counter", delta=1
):
    """Commutative counter updates: conflicting but benign pairs."""
    lock_site = CodeSite(file, line, fn)
    add_site = CodeSite(file, line + 1, fn)
    body_site = CodeSite(file, line + 2, fn)
    unlock_site = CodeSite(file, line + 3, fn)
    for _ in range(rounds):
        think = _gap(rng, gap)
        if think:
            yield Compute(think, site=CodeSite(file, line - 1, fn))
        yield Acquire(lock=lock, site=lock_site)
        yield Write(addr, op=Add(delta), site=add_site)
        if cs_len:
            yield Compute(cs_len, site=body_site)
        yield Release(lock=lock, site=unlock_site)


def tlcp_rounds(
    lock, addr, rounds, *, file, line, gap, cs_len, rng, thread_index,
    fn="mutator", start_round=0,
):
    """True conflicts: read-modify-write with thread-unique stored values."""
    lock_site = CodeSite(file, line, fn)
    read_site = CodeSite(file, line + 1, fn)
    write_site = CodeSite(file, line + 2, fn)
    unlock_site = CodeSite(file, line + 3, fn)
    for i in range(rounds):
        r = start_round + i
        think = _gap(rng, gap)
        if think:
            yield Compute(think, site=CodeSite(file, line - 1, fn))
        yield Acquire(lock=lock, site=lock_site)
        yield Read(addr, site=read_site)
        yield Write(addr, op=Store(1000 * (thread_index + 1) + r), site=write_site)
        if cs_len:
            yield Compute(cs_len, site=CodeSite(file, line + 3, fn))
        yield Release(lock=lock, site=unlock_site)


def private_lock_rounds(
    lock_prefix, thread_index, rounds, *, file, line, gap, cs_len, rng, fn="local"
):
    """Per-thread distinct locks: inflate the dynamic lock count (Table 1's
    #Locks column) without creating any cross-thread pairs."""
    lock = f"{lock_prefix}#{thread_index}"
    lock_site = CodeSite(file, line, fn)
    unlock_site = CodeSite(file, line + 2, fn)
    for r in range(rounds):
        think = _gap(rng, gap)
        if think:
            yield Compute(think, site=CodeSite(file, line - 1, fn))
        yield Acquire(lock=lock, site=lock_site)
        yield Write(f"{lock_prefix}.data#{thread_index}", op=Store(r), site=CodeSite(file, line + 1, fn))
        if cs_len:
            yield Compute(cs_len, site=CodeSite(file, line + 1, fn))
        yield Release(lock=lock, site=unlock_site)


def compute_only_rounds(rounds, *, file, line, work, rng, fn="kernel"):
    """Lock-free number crunching (blackscholes/swaptions shape)."""
    site = CodeSite(file, line, fn)
    for _ in range(rounds):
        yield Compute(_gap(rng, work) or work, site=site)
