"""The two exploited ULCP bugs of §6.6, each with original + fixed variants.

* **BUG 1** (openldap, Figure 4): worker threads spin-wait on a
  reference count under a mutex.  Fixed variant: a barrier — the paper's
  recommended ``pthread_mutex_barrier`` rewrite.
* **BUG 2** (pbzip2, Figure 18): the shutdown read-read check
  (``fifo.empty`` + nested ``producerDone``) serializes consumer joins.
  Fixed variant: the signal/wait model — the producer raises a flag and
  consumers exit without checking.

Figure 19's sensitivity claims hold by construction: the bug code runs a
*fixed* number of times per thread regardless of input size, while the
input size scales the surrounding useful work — so the bugs' normalized
impact declines as inputs grow (opposite of Figure 16), and grows with
thread count.
"""

from typing import Iterator, List, Tuple

from repro.sim.requests import (
    Acquire,
    AwaitFlag,
    BarrierWait,
    Compute,
    Read,
    Release,
    SetFlag,
    Store,
    Write,
)
from repro.trace.codesite import CodeSite
from repro.workloads.base import Workload, register
from repro.workloads.realworld.openldap import release_refcount, spin_wait_refcount
from repro.workloads.realworld.pbzip2 import consumer_done_check

PB_FILE = "pbzip2.cpp"
MP_FILE = "mp_fopen.c"


class _BugWorkload(Workload):
    """Shared shape: per-thread useful work scaled by input size, plus a
    fixed-frequency bug pattern."""

    category = "bug"
    useful_work = 4000  # per thread, scaled by input size

    def __init__(self, *, fixed: bool = False, **kwargs):
        super().__init__(**kwargs)
        self.fixed = fixed

    def scaled_work(self) -> int:
        return max(1, round(self.useful_work * self.size_factor * self.scale))


@register
class Bug1SpinWait(_BugWorkload):
    """openldap's spin-wait refcount (original) vs. barrier (fixed)."""

    name = "bug1-openldap-spinwait"
    max_polls = 12
    poll_gap = 200
    closer_work = 2400

    def _worker(self, k: int) -> Iterator:
        rng = self.rng(f"worker{k}")
        yield Compute(1 + 7 * k)
        yield Compute(self.scaled_work(), site=CodeSite(MP_FILE, 600, "work"))
        if self.fixed:
            yield BarrierWait(
                barrier="close_barrier",
                parties=self.threads + 1,
                site=CodeSite(MP_FILE, 654, "__memp_fclose"),
            )
        else:
            yield from spin_wait_refcount(
                max_polls=self.max_polls, poll_gap=self.poll_gap, rng=rng
            )

    def _closer(self) -> Iterator:
        yield Compute(self.scaled_work() // 2, site=CodeSite(MP_FILE, 610, "work"))
        if self.fixed:
            yield Compute(self.closer_work, site=CodeSite(MP_FILE, 620, "__memp_sync"))
            yield BarrierWait(
                barrier="close_barrier",
                parties=self.threads + 1,
                site=CodeSite(MP_FILE, 655, "__memp_sync"),
            )
        else:
            yield from release_refcount(work=self.closer_work)

    def programs(self) -> List[Tuple]:
        programs = [(self._worker(k), f"bug1-w{k}") for k in range(self.threads)]
        programs.append((self._closer(), "bug1-closer"))
        return programs


@register
class Bug2ConsumerJoin(_BugWorkload):
    """pbzip2's read-read shutdown checks (original) vs. signal/wait (fixed)."""

    name = "bug2-pbzip2-join"
    join_polls = 6
    poll_gap = 150
    useful_work = 25000

    def _producer(self) -> Iterator:
        yield Compute(self.scaled_work(), site=CodeSite(PB_FILE, 1800, "producer"))
        yield Acquire(lock="muDone", site=CodeSite(PB_FILE, 527, "syncSetProducerDone"))
        yield Write("producerDone", op=Store(1), site=CodeSite(PB_FILE, 528, "syncSetProducerDone"))
        yield Release(lock="muDone", site=CodeSite(PB_FILE, 529, "syncSetProducerDone"))
        yield Acquire(lock="mu", site=CodeSite(PB_FILE, 1890, "producer"))
        yield Write("fifo.empty", op=Store(1), site=CodeSite(PB_FILE, 1891, "producer"))
        yield Release(lock="mu", site=CodeSite(PB_FILE, 1892, "producer"))
        if self.fixed:
            yield SetFlag(flag="consumers.exit", site=CodeSite(PB_FILE, 1895, "producer"))

    def _consumer(self, k: int) -> Iterator:
        rng = self.rng(f"consumer{k}")
        yield Compute(1 + 9 * k)
        yield Compute(self.scaled_work(), site=CodeSite(PB_FILE, 2140, "BZ2_compress"))
        if self.fixed:
            yield AwaitFlag(flag="consumers.exit", site=CodeSite(PB_FILE, 2109, "consumer"))
        else:
            for _ in range(self.join_polls):
                yield from consumer_done_check(rng=rng, polls=1)
                yield Compute(self.poll_gap, site=CodeSite(PB_FILE, 2130, "consumer"))

    def programs(self) -> List[Tuple]:
        programs = [(self._consumer(k), f"bug2-c{k}") for k in range(self.threads)]
        programs.append((self._producer(), "bug2-producer"))
        return programs
