"""Appendix A cases: small self-contained ULCP demonstrations.

Each case reproduces one real-world manifestation from the paper's
appendix and is primarily used by tests and examples to show what the
classifier reports for it.
"""

from typing import Iterator, List, Tuple

from repro.sim.requests import (
    Acquire,
    Compute,
    CondWait,
    Read,
    Release,
    Signal,
    Store,
    Write,
)
from repro.trace.codesite import CodeSite
from repro.workloads.base import Workload, register


@register
class Case1CondWaitNullLock(Workload):
    """Case 1: pthread_cond_wait's re-acquisition produces null-locks."""

    name = "case1-condwait-nulllock"
    category = "bug"

    def _waiter(self) -> Iterator:
        fn = "waiter"
        yield Acquire(lock="L", site=CodeSite("case1.c", 10, fn))
        yield CondWait(cond="cond", lock="L", site=CodeSite("case1.c", 12, fn))
        # the wake re-acquired L with no shared access: a null-lock
        yield Release(lock="L", site=CodeSite("case1.c", 16, fn))

    def _signaler(self) -> Iterator:
        fn = "signaler"
        yield Compute(500, site=CodeSite("case1.c", 30, fn))
        yield Acquire(lock="L", site=CodeSite("case1.c", 31, fn))
        yield Signal(cond="cond", site=CodeSite("case1.c", 32, fn))
        yield Release(lock="L", site=CodeSite("case1.c", 33, fn))

    def programs(self) -> List[Tuple]:
        return [(self._waiter(), "waiter"), (self._signaler(), "signaler")]


@register
class Case3DisjointFields(Workload):
    """Case 3: two threads touch disjoint fields of the same slot object."""

    name = "case3-disjoint-fields"
    category = "bug"

    def _releaser(self) -> Iterator:
        fn = "srv_release_threads"
        yield Acquire(lock="srv_sys.mutex", site=CodeSite("srv0srv.cc", 100, fn))
        yield Write("slot.suspended", op=Store(0), site=CodeSite("srv0srv.cc", 102, fn))
        yield Release(lock="srv_sys.mutex", site=CodeSite("srv0srv.cc", 104, fn))

    def _checker(self) -> Iterator:
        fn = "srv_threads_has_released_slot"
        yield Compute(60, site=CodeSite("srv0srv.cc", 198, fn))
        yield Acquire(lock="srv_sys.mutex", site=CodeSite("srv0srv.cc", 200, fn))
        yield Read("slot.in_use", site=CodeSite("srv0srv.cc", 201, fn))
        yield Read("slot.type", site=CodeSite("srv0srv.cc", 202, fn))
        yield Release(lock="srv_sys.mutex", site=CodeSite("srv0srv.cc", 206, fn))

    def _toucher(self) -> Iterator:
        # background reads making all fields shared
        yield Compute(600)
        yield Read("slot.suspended")
        yield Read("slot.in_use")
        yield Read("slot.type")

    def programs(self) -> List[Tuple]:
        return [
            (self._releaser(), "releaser"),
            (self._checker(), "checker"),
            (self._toucher(), "monitor"),
        ]


@register
class Case5DisjointMembers(Workload):
    """Case 5: set_query_id vs set_mysys_var under one LOCK_thd_data."""

    name = "case5-thd-members"
    category = "bug"

    def _set_query_id(self) -> Iterator:
        fn = "THD::set_query_id"
        yield Acquire(lock="LOCK_thd_data", site=CodeSite("sql_class.cc", 4526, fn))
        yield Write("thd.query_id", op=Store(9), site=CodeSite("sql_class.cc", 4527, fn))
        yield Release(lock="LOCK_thd_data", site=CodeSite("sql_class.cc", 4528, fn))

    def _set_mysys_var(self) -> Iterator:
        fn = "THD::set_mysys_var"
        yield Compute(40, site=CodeSite("sql_class.cc", 4533, fn))
        yield Acquire(lock="LOCK_thd_data", site=CodeSite("sql_class.cc", 4534, fn))
        yield Write("thd.mysys_var", op=Store(3), site=CodeSite("sql_class.cc", 4535, fn))
        yield Release(lock="LOCK_thd_data", site=CodeSite("sql_class.cc", 4536, fn))

    def _toucher(self) -> Iterator:
        yield Compute(500)
        yield Read("thd.query_id")
        yield Read("thd.mysys_var")

    def programs(self) -> List[Tuple]:
        return [
            (self._set_query_id(), "t1"),
            (self._set_mysys_var(), "t2"),
            (self._toucher(), "monitor"),
        ]


@register
class Case8HashLookups(Workload):
    """Case 8: fil_space_get_by_id called 4x per block read, serialized."""

    name = "case8-hash-lookups"
    category = "bug"

    def _reader(self, k: int) -> Iterator:
        rng = self.rng(f"r{k}")
        for _ in range(self.rounds(4)):
            yield Compute(rng.randint(40, 90))
            for fn, line in (
                ("fil_space_get_version", 5400),
                ("fil_inc_pending_ops", 5430),
                ("fil_decr_pending_ops", 5460),
                ("fil_space_get_size", 5490),
            ):
                yield Acquire(lock="fil_system.mutex", site=CodeSite("fil0fil.cc", line, fn))
                yield Read("fil_system.hash", site=CodeSite("fil0fil.cc", line + 2, fn))
                yield Compute(70, site=CodeSite("fil0fil.cc", line + 3, fn))
                yield Release(lock="fil_system.mutex",
                              site=CodeSite("fil0fil.cc", line + 5, fn))

    def programs(self) -> List[Tuple]:
        return [(self._reader(k), f"trx-{k}") for k in range(self.threads)]


@register
class Case9QueryCacheTimeout(Workload):
    """Case 9 (= bug #68573): the 50ms SELECT timeout silently grows."""

    name = "case9-querycache-timeout"
    category = "bug"

    timeout = 800

    def _select(self, k: int) -> Iterator:
        fn = "Query_cache::try_lock"
        yield Compute(1 + 5 * k)
        yield Acquire(lock="structure_guard_mutex", site=CodeSite("sql_cache.cc", 310, fn))
        yield CondWait(
            cond="COND_cache_status_changed",
            lock="structure_guard_mutex",
            timeout=self.timeout,
            site=CodeSite("sql_cache.cc", 314, fn),
        )
        yield Compute(120, site=CodeSite("sql_cache.cc", 318, fn))
        yield Release(lock="structure_guard_mutex", site=CodeSite("sql_cache.cc", 322, fn))

    def programs(self) -> List[Tuple]:
        return [(self._select(k), f"select-{k}") for k in range(self.threads)]


@register
class Case10GlobalReadLock(Workload):
    """Case 10 (bug #60951): UPDATE and DELETE serialized by the global
    read lock even when touching different fields."""

    name = "case10-global-read-lock"
    category = "bug"

    def _stmt(self, k: int, field: str, line: int) -> Iterator:
        fn = "wait_if_global_read_lock"
        yield Compute(30 * (k + 1))
        yield Acquire(lock="LOCK_global_read_lock", site=CodeSite("lock.cc", 1231, fn))
        yield Read("global_read_lock.count", site=CodeSite("lock.cc", 1249, fn))
        yield Compute(250, site=CodeSite("lock.cc", 1251, fn))
        yield Release(lock="LOCK_global_read_lock", site=CodeSite("lock.cc", 1268, fn))
        yield Write(field, op=Store(k + 1), site=CodeSite("sql_parse.cc", line, "mysql_execute"))

    def programs(self) -> List[Tuple]:
        return [
            (self._stmt(0, "table.rows", 3796), "update"),
            (self._stmt(1, "table.index", 4015), "delete"),
        ]


APPENDIX_CASES = (
    Case1CondWaitNullLock,
    Case3DisjointFields,
    Case5DisjointMembers,
    Case8HashLookups,
    Case9QueryCacheTimeout,
    Case10GlobalReadLock,
)
