"""facesim: physics simulation of a human face.

Modelled as the real kernel's partitioned Newton solver: worker threads
own mesh partitions; per iteration they read the shared boundary state
under the solver lock in *long* critical sections — facesim's sections
are the largest of the suite (§6.3 explains its speedup > fluidanimate
despite far fewer ULCPs) — then write their partition's residual slot
(disjoint writes) and occasionally probe the empty dirty-list
(null-locks).  Partitions synchronize with a barrier per iteration.

Table 1 profile: 14,541 locks; RR 871 ~ DW 819 balanced, NL 102, BN 12.
"""

from typing import Iterator, List, Tuple

from repro.sim.requests import (
    Acquire,
    Add,
    BarrierWait,
    Compute,
    Read,
    Release,
    Store,
    Write,
)
from repro.trace.codesite import CodeSite
from repro.workloads.base import Workload, register
from repro.workloads.patterns import private_lock_rounds

FILE = "facesim.cpp"


@register
class Facesim(Workload):
    name = "facesim"
    category = "parsec"

    iterations = 9
    solve_work = 6800
    cs_len = 1500  # large-scale critical sections
    gap = 2100
    local_rounds = 6

    def _worker(self, k: int) -> Iterator:
        rng = self.rng(f"worker{k}")
        fn = "NEWTON_STEP"
        iters = self.rounds(self.iterations)
        slots = 2 * self.threads + 1
        yield Compute(1 + 11 * k, site=CodeSite(FILE, 100, fn))
        yield Acquire(lock="solver.residual_lock", site=CodeSite(FILE, 102, fn))
        for s in range(slots):
            yield Read(f"residual[{s}]", site=CodeSite(FILE, 103, fn))
        yield Release(lock="solver.residual_lock", site=CodeSite(FILE, 105, fn))
        for it in range(iters):
            yield Compute(
                rng.randint(self.gap // 2, self.gap),
                site=CodeSite(FILE, 118, fn),
            )
            # long read-only boundary consultation (facesim's signature)
            yield Acquire(lock="solver.lock", site=CodeSite(FILE, 120, "Boundary_Read"))
            yield Read("mesh.boundary", site=CodeSite(FILE, 121, "Boundary_Read"))
            yield Compute(self.cs_len, site=CodeSite(FILE, 122, "Boundary_Read"))
            yield Release(lock="solver.lock", site=CodeSite(FILE, 124, "Boundary_Read"))
            yield Compute(
                rng.randint(self.solve_work // 2, self.solve_work),
                site=CodeSite(FILE, 140, fn),
            )
            # partition residual into its own slot (long disjoint writes)
            slot = (k + it * self.threads) % slots
            yield Acquire(lock="solver.residual_lock", site=CodeSite(FILE, 150, fn))
            yield Write(f"residual[{slot}]", op=Store(8), site=CodeSite(FILE, 151, fn))
            yield Compute(self.cs_len, site=CodeSite(FILE, 152, fn))
            yield Release(lock="solver.residual_lock", site=CodeSite(FILE, 154, fn))
            if it % 5 == 2:
                # dirty-list probe that finds nothing (null-lock)
                yield Acquire(lock="solver.dirty_lock", site=CodeSite(FILE, 160, fn))
                yield Release(lock="solver.dirty_lock", site=CodeSite(FILE, 162, fn))
            if it % 7 == 3:
                # convergence counter (commutative, benign)
                yield Acquire(lock="solver.count_lock", site=CodeSite(FILE, 170, fn))
                yield Write("solver.converged", op=Add(1), site=CodeSite(FILE, 171, fn))
                yield Release(lock="solver.count_lock", site=CodeSite(FILE, 173, fn))
            yield from private_lock_rounds(
                "fs.partition", k, self.rounds(self.local_rounds),
                file=FILE, line=180, gap=self.gap // 3, cs_len=120, rng=rng,
            )
            yield BarrierWait(
                barrier="newton_barrier", parties=self.threads,
                site=CodeSite(FILE, 190, fn),
            )

    def programs(self) -> List[Tuple]:
        return [(self._worker(k), f"fs-{k}") for k in range(self.threads)]
