"""x264: H.264 video encoding with frame-parallel dependency waits.

x264 encodes frames in parallel; a frame thread may only encode a row
once its reference frame has progressed past it.  The dependency check —
take the progress lock, test, cond-wait when behind — is the paper's
null-lock factory (Table 1: 941 NLs, the most of any app; every wake
re-acquires the mutex around an empty body, appendix Case 1).  Encoder
parameters are consulted read-only under a shared lock on every row
(read-read, 3,841), and finished macroblock rows land in distinct output
slots (disjoint writes, 412).
"""

from typing import Iterator, List, Tuple

from repro.sim.requests import (
    Acquire,
    Broadcast,
    Compute,
    CondWait,
    Read,
    Release,
    Store,
    Write,
)
from repro.trace.codesite import CodeSite
from repro.workloads.base import Workload, register
from repro.workloads.patterns import private_lock_rounds

FILE = "x264.c"


@register
class X264(Workload):
    name = "x264"
    category = "parsec"

    rows_per_frame = 10
    encode_work = 800
    gap = 350
    local_rounds = 12

    def _encoder(self, k: int) -> Iterator:
        """Encode frame ``k``; frame 0 has no reference."""
        rng = self.rng(f"enc{k}")
        fn = "x264_slice_write"
        rows = self.rounds(self.rows_per_frame)
        slots = 2 * self.threads + 1
        yield Compute(1 + 11 * k, site=CodeSite(FILE, 100, fn))
        # one pass over the output slots (they are muxed elsewhere)
        yield Acquire(lock="out.lock", site=CodeSite(FILE, 102, fn))
        for s in range(slots):
            yield Read(f"mb_out[{s}]", site=CodeSite(FILE, 103, fn))
        yield Release(lock="out.lock", site=CodeSite(FILE, 105, fn))
        for row in range(rows):
            # consult the shared encoder parameters (read-only, every row)
            yield Acquire(lock="params.lock", site=CodeSite(FILE, 120, "x264_ratecontrol"))
            yield Read("encoder.params", site=CodeSite(FILE, 121, "x264_ratecontrol"))
            yield Compute(90, site=CodeSite(FILE, 122, "x264_ratecontrol"))
            yield Release(lock="params.lock", site=CodeSite(FILE, 124, "x264_ratecontrol"))
            if k > 0:
                # frame dependency: wait until the reference is past us
                # (Case 1: every cond wake re-acquires around an empty body)
                yield Acquire(lock="dep.lock", site=CodeSite(FILE, 140, "x264_frame_cond_wait"))
                progress = yield Read(f"progress[{k - 1}]", site=CodeSite(FILE, 141, "x264_frame_cond_wait"))
                while progress <= row:
                    outcome = yield CondWait(
                        cond=f"dep.cond[{k - 1}]", lock="dep.lock",
                        timeout=4000,
                        site=CodeSite(FILE, 143, "x264_frame_cond_wait"),
                    )
                    progress = yield Read(
                        f"progress[{k - 1}]",
                        site=CodeSite(FILE, 144, "x264_frame_cond_wait"),
                    )
                yield Release(lock="dep.lock", site=CodeSite(FILE, 147, "x264_frame_cond_wait"))
            yield Compute(
                rng.randint(self.encode_work // 2, self.encode_work),
                site=CodeSite(FILE, 160, fn),
            )
            # publish our progress and wake dependents
            yield Acquire(lock="dep.lock", site=CodeSite(FILE, 170, "x264_frame_cond_broadcast"))
            yield Write(f"progress[{k}]", op=Store(row + 1),
                        site=CodeSite(FILE, 171, "x264_frame_cond_broadcast"))
            yield Broadcast(cond=f"dep.cond[{k}]",
                            site=CodeSite(FILE, 172, "x264_frame_cond_broadcast"))
            yield Release(lock="dep.lock", site=CodeSite(FILE, 174, "x264_frame_cond_broadcast"))
            if row % 3 == 2:
                # finished macroblock rows go to distinct output slots
                slot = (k + row * self.threads) % slots
                yield Acquire(lock="out.lock", site=CodeSite(FILE, 180, fn))
                yield Write(f"mb_out[{slot}]", op=Store(4), site=CodeSite(FILE, 181, fn))
                yield Release(lock="out.lock", site=CodeSite(FILE, 183, fn))
            yield Compute(rng.randint(self.gap // 2, self.gap),
                          site=CodeSite(FILE, 190, fn))
            # per-thread lookahead bookkeeping (private lock traffic)
            yield from private_lock_rounds(
                "x264.lookahead", k, self.rounds(self.local_rounds),
                file=FILE, line=200, gap=self.gap // 2, cs_len=50, rng=rng,
            )

    def programs(self) -> List[Tuple]:
        return [(self._encoder(k), f"x264-{k}") for k in range(self.threads)]
