"""swaptions: Monte-Carlo swaption pricing — nearly lock-free.

Table 1: 23 dynamic locks, zero ULCPs.  Threads price disjoint swaption
ranges; the only lock guards a truly conflicting result aggregation at
the end.
"""

from repro.workloads.base import register
from repro.workloads.mix import PatternMixWorkload


@register
class Swaptions(PatternMixWorkload):
    name = "swaptions"
    category = "parsec"
    file = "swaptions.cpp"

    pure_compute = 40
    compute_work = 700
    tlcp = 0.5

    cs_len = 150
    gap = 500
