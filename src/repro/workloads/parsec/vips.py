"""vips: image-processing pipeline over tiles.

Modelled as the real library's threadpool: workers claim tiles and, per
tile, consult the shared image's region descriptors *read-only* under
the image lock — by far the hottest pattern (Table 1: 4,512 read-read) —
then compute the operation and write the result into their tile's slot
of the output image via the uniform reference (disjoint writes, 1,142).
Cache probes that find nothing produce occasional null-locks (142), and
per-thread buffer management uses private locks (most of the 33,586
dynamic acquisitions).
"""

from typing import Iterator, List, Tuple

from repro.sim.requests import Acquire, Compute, Read, Release, Store, Write
from repro.trace.codesite import CodeSite
from repro.workloads.base import Workload, register
from repro.workloads.patterns import private_lock_rounds

FILE = "vips.c"


@register
class Vips(Workload):
    name = "vips"
    category = "parsec"

    tiles_per_worker = 15
    lookups_per_tile = 3
    convolve_work = 700
    cs_len = 200
    gap = 700
    buffer_rounds_per_tile = 11

    def _worker(self, k: int) -> Iterator:
        rng = self.rng(f"worker{k}")
        fn = "vips_threadpool_run"
        tiles = self.rounds(self.tiles_per_worker)
        slots = 2 * self.threads + 1
        yield Compute(1 + 13 * k, site=CodeSite(FILE, 100, fn))
        # output image is scanned by the writer elsewhere: slots are shared
        yield Acquire(lock="im.out_lock", site=CodeSite(FILE, 102, fn))
        for s in range(slots):
            yield Read(f"out_tile[{s}]", site=CodeSite(FILE, 103, fn))
        yield Release(lock="im.out_lock", site=CodeSite(FILE, 105, fn))
        for tile in range(tiles):
            for lookup in range(self.rounds(self.lookups_per_tile)):
                yield Compute(
                    rng.randint(self.gap // 2, self.gap),
                    site=CodeSite(FILE, 118, fn),
                )
                # read-only region-descriptor consultation
                line = 120 + 40 * (lookup % 3)
                yield Acquire(lock="im.lock", site=CodeSite(FILE, line, "vips_region_prepare"))
                yield Read("im.regions", site=CodeSite(FILE, line + 1, "vips_region_prepare"))
                yield Compute(self.cs_len, site=CodeSite(FILE, line + 2, "vips_region_prepare"))
                yield Release(lock="im.lock", site=CodeSite(FILE, line + 3, "vips_region_prepare"))
            yield Compute(
                rng.randint(self.convolve_work // 2, self.convolve_work),
                site=CodeSite(FILE, 240, "vips_conv_gen"),
            )
            # write this tile into its own slot of the output image
            slot = (k + tile * self.threads) % slots
            yield Acquire(lock="im.out_lock", site=CodeSite(FILE, 250, fn))
            yield Write(f"out_tile[{slot}]", op=Store(6), site=CodeSite(FILE, 251, fn))
            yield Release(lock="im.out_lock", site=CodeSite(FILE, 253, fn))
            if tile % 11 == 5:
                # cache probe that finds nothing (null-lock)
                yield Acquire(lock="im.cache_lock", site=CodeSite(FILE, 260, "vips_cache"))
                yield Release(lock="im.cache_lock", site=CodeSite(FILE, 262, "vips_cache"))
            # per-thread buffer recycling (private lock traffic)
            yield from private_lock_rounds(
                "vips.buffer", k, self.rounds(self.buffer_rounds_per_tile),
                file=FILE, line=270, gap=self.gap // 3, cs_len=50, rng=rng,
            )

    def programs(self) -> List[Tuple]:
        return [(self._worker(k), f"vips-{k}") for k in range(self.threads)]
