"""bodytrack: particle-filter body tracking.

Modelled as the real kernel: the worker pool processes frames in lock
step (a barrier per frame).  Within a frame each worker evaluates its
particle range — consulting the shared camera-frame edge maps *read-only*
under the observation lock (the read-read signature, Table 1's 1,322),
writing its particles' weights into distinct slots of the weight array
under the pool lock (disjoint writes, 321), and accumulating the
likelihood normalization with commutative adds (benign, 43).  Per-worker
work-stealing deques use private locks (the bulk of the 32,642 dynamic
locks).  No null-locks, as in Table 1.
"""

from typing import Iterator, List, Tuple

from repro.sim.requests import (
    Acquire,
    Add,
    BarrierWait,
    Compute,
    Read,
    Release,
    Store,
    Write,
)
from repro.trace.codesite import CodeSite
from repro.workloads.base import Workload, register
from repro.workloads.patterns import private_lock_rounds

FILE = "bodytrack.cpp"


@register
class Bodytrack(Workload):
    name = "bodytrack"
    category = "parsec"

    frames = 4
    lookups_per_frame = 3
    eval_work = 1600
    cs_len = 170
    gap = 1300
    steal_rounds_per_frame = 40

    def _worker(self, k: int) -> Iterator:
        rng = self.rng(f"worker{k}")
        fn = "ParticleFilter::Update"
        slots = 2 * self.threads + 1
        frames = self.rounds(self.frames)
        yield Compute(1 + 9 * k, site=CodeSite(FILE, 100, fn))
        # edge-map scan making the weight slots shared
        yield Acquire(lock="pool.weights_lock", site=CodeSite(FILE, 105, fn))
        for s in range(slots):
            yield Read(f"weights[{s}]", site=CodeSite(FILE, 106, fn))
        yield Release(lock="pool.weights_lock", site=CodeSite(FILE, 108, fn))
        for frame in range(frames):
            for lookup in range(self.rounds(self.lookups_per_frame)):
                yield Compute(
                    rng.randint(self.gap // 2, self.gap),
                    site=CodeSite(FILE, 118, fn),
                )
                # read-only edge-map consultation (the hot read-read lock)
                line = 120 + 40 * (lookup % 2)
                yield Acquire(lock="obs.lock", site=CodeSite(FILE, line, "ImageMeasurements"))
                yield Read("edge_maps", site=CodeSite(FILE, line + 1, "ImageMeasurements"))
                yield Compute(self.cs_len, site=CodeSite(FILE, line + 2, "ImageMeasurements"))
                yield Release(lock="obs.lock", site=CodeSite(FILE, line + 3, "ImageMeasurements"))
            yield Compute(
                rng.randint(self.eval_work // 2, self.eval_work),
                site=CodeSite(FILE, 200, fn),
            )
            # write this worker's particle weights (disjoint slot per round)
            slot = (k + frame * self.threads) % slots
            yield Acquire(lock="pool.weights_lock", site=CodeSite(FILE, 210, fn))
            yield Write(f"weights[{slot}]", op=Store(5), site=CodeSite(FILE, 211, fn))
            yield Compute(self.cs_len // 2, site=CodeSite(FILE, 212, fn))
            yield Release(lock="pool.weights_lock", site=CodeSite(FILE, 214, fn))
            if frame % 2 == 1:
                # likelihood normalization: commutative accumulation
                yield Acquire(lock="pool.sum_lock", site=CodeSite(FILE, 220, fn))
                yield Write("likelihood.sum", op=Add(3), site=CodeSite(FILE, 221, fn))
                yield Release(lock="pool.sum_lock", site=CodeSite(FILE, 223, fn))
            # per-worker work-stealing deque: private lock traffic
            yield from private_lock_rounds(
                "bt.deque", k, self.rounds(self.steal_rounds_per_frame),
                file=FILE, line=230, gap=self.gap // 3, cs_len=60, rng=rng,
            )
            # frame barrier: everyone advances together
            yield BarrierWait(
                barrier="frame_barrier", parties=self.threads,
                site=CodeSite(FILE, 250, "TicketDispenser"),
            )

    def programs(self) -> List[Tuple]:
        return [(self._worker(k), f"bt-{k}") for k in range(self.threads)]
