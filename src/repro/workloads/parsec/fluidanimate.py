"""fluidanimate: SPH fluid dynamics with fine-grained per-cell locks.

Modelled as the real kernel: the grid is striped across workers; the
boundary rows between stripes carry one lock per cell — the suite's most
lock-intensive app (Table 1: 82,142 dynamic acquisitions).  Per timestep:

* **density phase** — both neighbouring workers read each boundary
  cell's density/pressure under its cell lock (tiny read-only sections:
  the 10,501 read-read pairs);
* **force phase** — each side writes its force contribution into its own
  per-side slot of the cell (same lock, different addresses: the 6,694
  disjoint writes);
* **reduction** — the boundary's owner combines both sides (a true
  dependency), then a barrier ends the step;
* occasional commutative collision counters (benign) and empty ghost-cell
  probes (null-locks) round out the profile.

Critical sections are tiny (§6.3's explanation for why facesim's speedup
beats fluidanimate's despite far fewer ULCPs), and §6.4 uses this model
as the lockset-overhead stress test.
"""

from typing import Iterator, List, Tuple

from repro.sim.requests import (
    Acquire,
    Add,
    BarrierWait,
    Compute,
    Read,
    Release,
    Store,
    Write,
)
from repro.trace.codesite import CodeSite
from repro.workloads.base import Workload, register
from repro.workloads.patterns import private_lock_rounds

FILE = "fluidanimate.cpp"
#: cells per boundary row between two adjacent stripes
ROW_CELLS = 5


@register
class Fluidanimate(Workload):
    name = "fluidanimate"
    category = "parsec"

    timesteps = 12
    interior_work = 5200
    cs_len = 55  # fine-grained sections
    gap = 750
    local_rounds = 8
    startup_compute = 5  # fixed, does not scale with input size

    def _boundaries_of(self, k: int) -> List[int]:
        """Boundary rows adjacent to stripe ``k`` (between k-1/k and k/k+1)."""
        rows = []
        if k > 0:
            rows.append(k - 1)
        if k < self.threads - 1:
            rows.append(k)
        return rows

    def _cell_lock(self, b: int, j: int) -> str:
        return f"cell[{b}][{j}]"

    def _worker(self, k: int) -> Iterator:
        rng = self.rng(f"worker{k}")
        fn = "ComputeForcesMT"
        steps = self.rounds(self.timesteps)
        yield Compute(1 + 13 * k, site=CodeSite(FILE, 100, fn))
        for _ in range(self.rounds_fixed(self.startup_compute)):
            yield Compute(rng.randint(300, 500), site=CodeSite(FILE, 101, "InitSim"))
        for step in range(steps):
            yield Compute(
                rng.randint(self.interior_work // 2, self.interior_work)
                + 230 * k,  # stripes reach the boundary storm staggered
                site=CodeSite(FILE, 120, "ComputeDensitiesMT"),
            )
            # density phase: read every adjacent boundary cell, twice
            # (near- and far-neighbour passes: two static sites)
            for b in self._boundaries_of(k):
                for j in range(ROW_CELLS):
                    for line, pass_fn in ((140, "GetNeighborCells"),
                                          (180, "ComputeDensity2")):
                        yield Compute(rng.randint(self.gap // 2, self.gap),
                                      site=CodeSite(FILE, line - 1, pass_fn))
                        yield Acquire(lock=self._cell_lock(b, j),
                                      site=CodeSite(FILE, line, pass_fn))
                        yield Read(f"cell[{b}][{j}].rho",
                                   site=CodeSite(FILE, line + 1, pass_fn))
                        yield Compute(self.cs_len, site=CodeSite(FILE, line + 2, pass_fn))
                        yield Release(lock=self._cell_lock(b, j),
                                      site=CodeSite(FILE, line + 3, pass_fn))
            # force phase: write this side's contribution slot per cell
            for b in self._boundaries_of(k):
                side = 0 if b == k - 1 else 1
                for j in range(ROW_CELLS):
                    yield Compute(rng.randint(self.gap // 2, self.gap),
                                  site=CodeSite(FILE, 219, "ComputeForces2"))
                    yield Acquire(lock=self._cell_lock(b, j),
                                  site=CodeSite(FILE, 220, "ComputeForces2"))
                    yield Write(f"cell[{b}][{j}].force{side}", op=Store(3),
                                site=CodeSite(FILE, 221, "ComputeForces2"))
                    yield Compute(self.cs_len, site=CodeSite(FILE, 222, "ComputeForces2"))
                    yield Release(lock=self._cell_lock(b, j),
                                  site=CodeSite(FILE, 223, "ComputeForces2"))
            yield BarrierWait(barrier="force_barrier", parties=self.threads,
                              site=CodeSite(FILE, 230, fn))
            # reduction: each stripe owner folds the *neighbour's*
            # contribution into its own cells (a true cross-thread
            # dependency; also what makes the force slots shared)
            for b in self._boundaries_of(k):
                other_side = 1 if b == k - 1 else 0
                for j in range(ROW_CELLS):
                    yield Acquire(lock=self._cell_lock(b, j),
                                  site=CodeSite(FILE, 240, "ProcessCollisionsMT"))
                    yield Read(f"cell[{b}][{j}].force{other_side}",
                               site=CodeSite(FILE, 241, "ProcessCollisionsMT"))
                    yield Release(lock=self._cell_lock(b, j),
                                  site=CodeSite(FILE, 244, "ProcessCollisionsMT"))
            if step % 3 == 1:
                # collision counter: commutative (benign)
                yield Acquire(lock="sim.collision_lock", site=CodeSite(FILE, 250, fn))
                yield Write("sim.collisions", op=Add(1), site=CodeSite(FILE, 251, fn))
                yield Release(lock="sim.collision_lock", site=CodeSite(FILE, 253, fn))
            if step % 6 == 2:
                # empty ghost-cell probe (null-lock)
                yield Acquire(lock="sim.ghost_lock", site=CodeSite(FILE, 260, fn))
                yield Release(lock="sim.ghost_lock", site=CodeSite(FILE, 262, fn))
            # per-thread particle bookkeeping (dynamic lock count)
            yield from private_lock_rounds(
                "fa.particles", k, self.rounds(self.local_rounds),
                file=FILE, line=270, gap=self.gap, cs_len=40, rng=rng,
            )
            yield BarrierWait(barrier="step_barrier", parties=self.threads,
                              site=CodeSite(FILE, 280, fn))

    def programs(self) -> List[Tuple]:
        return [(self._worker(k), f"fa-{k}") for k in range(self.threads)]
