"""streamcluster: online clustering, barrier-synchronized phases.

Table 1: 191 locks, zero ULCPs.  streamcluster synchronizes with
barriers between phases; the few locks guard true conflicts (the shared
cluster-center update).  The model alternates compute phases, barrier
waits, and a genuine conflicting update — the pipeline must find nothing
to optimize.
"""

from typing import Iterator

from repro.sim.requests import BarrierWait, Compute
from repro.trace.codesite import CodeSite
from repro.workloads.base import register
from repro.workloads.mix import PatternMixWorkload
from repro.workloads.patterns import tlcp_rounds


@register
class Streamcluster(PatternMixWorkload):
    name = "streamcluster"
    category = "parsec"
    file = "streamcluster.cpp"

    phases = 6
    cs_len = 180
    gap = 250

    def _thread(self, k: int) -> Iterator:
        rng = self.rng(f"thread{k}")
        phase_site = CodeSite(self.file, 50, "pkmedian")
        barrier_site = CodeSite(self.file, 60, "pkmedian")
        for phase in range(self.rounds(self.phases)):
            yield Compute(rng.randint(2400, 4000), site=phase_site)
            yield from tlcp_rounds(
                "center_lock", "cluster.center", 1,
                file=self.file, line=70, gap=0, cs_len=self.cs_len,
                rng=rng, thread_index=k,
            )
            yield BarrierWait(
                barrier="phase", parties=self.threads, site=barrier_site
            )
