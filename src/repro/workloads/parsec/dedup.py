"""dedup: pipelined compression with hash-table deduplication.

Modelled as the real kernel's pipeline: a *chunker* splits the input
stream into chunks and feeds them through a semaphore to *dedup workers*
(the ``threads`` parameter), which probe the shared hash table under
bucket locks — most probes are read-only lookups (read-read ULCPs) or
inserts into distinct buckets (disjoint writes), some probes hit empty
buckets (null-locks), and refcount bumps commute (benign).  Compressed
chunks pass through another semaphore to a *writer* stage.

Table 1 profile: 19,352 locks; NL 231 / RR 2,421 / DW 1,952 / benign 164
(at the repository's documented ~1/100-per-thread scaling).
"""

from typing import Iterator, List, Tuple

from repro.sim.requests import (
    Acquire,
    Add,
    Compute,
    Read,
    Release,
    SemAcquire,
    SemRelease,
    Store,
    Write,
)
from repro.trace.codesite import CodeSite
from repro.workloads.base import Workload, register
from repro.workloads.patterns import private_lock_rounds

FILE = "dedup.c"
#: buckets in the shared hash table (odd so the rotation covers them all)
BUCKETS = 13


@register
class Dedup(Workload):
    name = "dedup"
    category = "parsec"

    #: chunks handled per dedup worker (base, scaled by input size)
    chunks_per_worker = 12
    chunk_work = 260
    compress_work = 520
    extra_locks = 10  # private bookkeeping rounds per chunk
    gap = 280

    @property
    def total_chunks(self) -> int:
        return self.rounds(self.chunks_per_worker) * self.threads

    def _chunker(self) -> Iterator:
        """Stage 1: split the stream, publish chunk descriptors."""
        rng = self.rng("chunker")
        fn = "Fragment"
        for i in range(self.total_chunks):
            yield Compute(
                rng.randint(self.chunk_work // 2, self.chunk_work),
                site=CodeSite(FILE, 120, fn),
            )
            yield Acquire(lock="chunk_q.mutex", site=CodeSite(FILE, 141, fn))
            yield Write(f"chunk[{i}]", op=Store(i + 1), site=CodeSite(FILE, 143, fn))
            yield Release(lock="chunk_q.mutex", site=CodeSite(FILE, 147, fn))
            yield SemRelease(sem="chunk_q.items", site=CodeSite(FILE, 149, fn))

    def _worker(self, k: int) -> Iterator:
        """Stage 2: dedup probes under the hash-table locks, then compress."""
        rng = self.rng(f"worker{k}")
        fn = "Deduplicate"
        my_chunks = self.rounds(self.chunks_per_worker)
        # warm scan: the bucket array is displayed/checkpointed elsewhere,
        # which is what makes the buckets shared objects
        yield Compute(1 + 7 * k, site=CodeSite(FILE, 200, fn))
        yield Acquire(lock="ht.bucket_lock", site=CodeSite(FILE, 205, fn))
        for b in range(BUCKETS):
            yield Read(f"bucket[{b}]", site=CodeSite(FILE, 206, fn))
        yield Release(lock="ht.bucket_lock", site=CodeSite(FILE, 208, fn))
        for i in range(my_chunks):
            yield SemAcquire(sem="chunk_q.items", site=CodeSite(FILE, 210, fn))
            yield Acquire(lock="chunk_q.mutex", site=CodeSite(FILE, 212, fn))
            yield Read(f"chunk[{k * my_chunks + i}]", site=CodeSite(FILE, 213, fn))
            yield Release(lock="chunk_q.mutex", site=CodeSite(FILE, 215, fn))
            yield Compute(
                rng.randint(self.gap, 2 * self.gap), site=CodeSite(FILE, 220, fn)
            )
            # read-only duplicate lookups: the common case (read-read
            # ULCPs) — first the rabin-fingerprint probe, then the
            # whole-chunk hash check
            yield Acquire(lock="ht.bucket_lock", site=CodeSite(FILE, 230, fn))
            yield Read(f"bucket[{(k + i) % BUCKETS}]", site=CodeSite(FILE, 231, fn))
            yield Compute(90, site=CodeSite(FILE, 232, fn))
            yield Release(lock="ht.bucket_lock", site=CodeSite(FILE, 234, fn))
            yield Compute(
                rng.randint(self.gap // 2, self.gap), site=CodeSite(FILE, 236, fn)
            )
            yield Acquire(lock="ht.bucket_lock", site=CodeSite(FILE, 290, "HashCheck"))
            yield Read(f"bucket[{(k + i + 3) % BUCKETS}]", site=CodeSite(FILE, 291, "HashCheck"))
            yield Compute(70, site=CodeSite(FILE, 292, "HashCheck"))
            yield Release(lock="ht.bucket_lock", site=CodeSite(FILE, 293, "HashCheck"))
            yield Compute(
                rng.randint(self.gap // 2, self.gap), site=CodeSite(FILE, 241, fn)
            )
            if i % 4 == 1:
                # duplicate hit: commutative refcount bump (benign)
                yield Acquire(lock="ht.refcount_lock", site=CodeSite(FILE, 250, fn))
                yield Write("ht.refs", op=Add(1), site=CodeSite(FILE, 251, fn))
                yield Release(lock="ht.refcount_lock", site=CodeSite(FILE, 253, fn))
            else:
                # miss: insert into this round's rotating bucket — always a
                # different bucket than concurrent workers (disjoint writes)
                slot = (k + i * self.threads) % BUCKETS
                yield Acquire(lock="ht.bucket_lock", site=CodeSite(FILE, 240, fn))
                yield Write(f"bucket[{slot}]", op=Store(7), site=CodeSite(FILE, 241, fn))
                yield Compute(110, site=CodeSite(FILE, 242, fn))
                yield Release(lock="ht.bucket_lock", site=CodeSite(FILE, 244, fn))
            if i % 8 == 0:
                # empty-probe fast path: nothing shared inside (null-lock)
                yield Acquire(lock="ht.probe_lock", site=CodeSite(FILE, 260, fn))
                yield Release(lock="ht.probe_lock", site=CodeSite(FILE, 262, fn))
            yield Compute(
                rng.randint(self.compress_work // 2, self.compress_work),
                site=CodeSite(FILE, 270, "Compress"),
            )
            yield Acquire(lock="out_q.mutex", site=CodeSite(FILE, 280, fn))
            yield Write(
                f"compressed[{k * my_chunks + i}]", op=Store(1),
                site=CodeSite(FILE, 281, fn),
            )
            yield Release(lock="out_q.mutex", site=CodeSite(FILE, 283, fn))
            yield SemRelease(sem="out_q.items", site=CodeSite(FILE, 285, fn))
            # private per-thread bookkeeping (inflates dynamic #Locks only)
            yield from private_lock_rounds(
                "dedup.local", k, self.rounds(self.extra_locks),
                file=FILE, line=300, gap=self.gap // 2, cs_len=60, rng=rng,
            )

    def _writer(self) -> Iterator:
        """Stage 3: reorder and write the compressed chunks out."""
        rng = self.rng("writer")
        fn = "SendBlock"
        my_chunks = self.rounds(self.chunks_per_worker)
        order = [
            k * my_chunks + i
            for i in range(my_chunks)
            for k in range(self.threads)
        ]
        for slot in order:
            yield SemAcquire(sem="out_q.items", site=CodeSite(FILE, 320, fn))
            yield Acquire(lock="out_q.mutex", site=CodeSite(FILE, 322, fn))
            yield Read(f"compressed[{slot}]", site=CodeSite(FILE, 323, fn))
            yield Release(lock="out_q.mutex", site=CodeSite(FILE, 325, fn))
            yield Compute(rng.randint(60, 120), site=CodeSite(FILE, 330, fn))

    def programs(self) -> List[Tuple]:
        programs = [(self._worker(k), f"dedup-w{k}") for k in range(self.threads)]
        programs.append((self._chunker(), "dedup-chunker"))
        programs.append((self._writer(), "dedup-writer"))
        return programs
