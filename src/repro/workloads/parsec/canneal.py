"""canneal: cache-aware simulated annealing.

Table 1: only 34 dynamic locks and zero ULCPs — locks protect genuinely
conflicting element swaps.  The model performs a handful of true
read-modify-write conflicts and nothing else; the pipeline must find no
optimization opportunity at any thread count or input size (§6.5 singles
canneal out for exactly this).
"""

from repro.workloads.base import register
from repro.workloads.mix import PatternMixWorkload


@register
class Canneal(PatternMixWorkload):
    name = "canneal"
    category = "parsec"
    file = "canneal.cpp"

    tlcp = 1.0
    pure_compute = 30
    compute_work = 500

    cs_len = 200
    gap = 400
