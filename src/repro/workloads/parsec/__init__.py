"""PARSEC benchmark models (11 of the 12; freqmine is OpenMP and excluded
by the paper).  Each module declares a pattern mix calibrated to Table 1:
same zero/non-zero structure and dominant categories, counts at ~1/100 of
the paper's raw numbers per thread (see EXPERIMENTS.md)."""

from repro.workloads.parsec.blackscholes import Blackscholes
from repro.workloads.parsec.bodytrack import Bodytrack
from repro.workloads.parsec.canneal import Canneal
from repro.workloads.parsec.dedup import Dedup
from repro.workloads.parsec.facesim import Facesim
from repro.workloads.parsec.ferret import Ferret
from repro.workloads.parsec.fluidanimate import Fluidanimate
from repro.workloads.parsec.streamcluster import Streamcluster
from repro.workloads.parsec.swaptions import Swaptions
from repro.workloads.parsec.vips import Vips
from repro.workloads.parsec.x264 import X264

PARSEC_WORKLOADS = (
    Blackscholes,
    Bodytrack,
    Canneal,
    Dedup,
    Facesim,
    Ferret,
    Fluidanimate,
    Streamcluster,
    Swaptions,
    Vips,
    X264,
)

__all__ = [cls.__name__ for cls in PARSEC_WORKLOADS] + ["PARSEC_WORKLOADS"]
