"""ferret: content-based similarity-search pipeline.

Modelled as the real kernel's stages: a *loader* enqueues query images
through a semaphore; *rank workers* (the ``threads`` parameter) segment
and extract features (compute), consult the shared index read-only
(read-read), write their query's result slot (disjoint writes under the
uniform output lock), and — the ferret signature — bump shared ranking
statistics counters on *every* query (commutative adds: benign pairs
dominate, Table 1's 343 vs 101 read-read).  An *output* thread drains
the result slots.

Table 1 profile: 6,231 locks; NL 11 / RR 101 / DW 231 / benign 343.
"""

from typing import Iterator, List, Tuple

from repro.sim.requests import (
    Acquire,
    Add,
    Compute,
    Read,
    Release,
    SemAcquire,
    SemRelease,
    Store,
    Write,
)
from repro.trace.codesite import CodeSite
from repro.workloads.base import Workload, register
from repro.workloads.patterns import private_lock_rounds

FILE = "ferret.c"


@register
class Ferret(Workload):
    name = "ferret"
    category = "parsec"

    queries_per_worker = 4
    segment_work = 700
    rank_work = 900
    gap = 300

    @property
    def total_queries(self) -> int:
        return self.rounds(self.queries_per_worker) * self.threads

    def _loader(self) -> Iterator:
        rng = self.rng("loader")
        fn = "t_load"
        for i in range(self.total_queries):
            yield Compute(rng.randint(120, 260), site=CodeSite(FILE, 60, fn))
            yield Acquire(lock="load_q.mutex", site=CodeSite(FILE, 70, fn))
            yield Write(f"query[{i}]", op=Store(i + 1), site=CodeSite(FILE, 71, fn))
            yield Release(lock="load_q.mutex", site=CodeSite(FILE, 73, fn))
            yield SemRelease(sem="load_q.items", site=CodeSite(FILE, 75, fn))

    def _worker(self, k: int) -> Iterator:
        rng = self.rng(f"rank{k}")
        fn = "t_rank"
        my_queries = self.rounds(self.queries_per_worker)
        slots = 2 * self.threads + 1
        # one shared scan making the result slots shared objects
        yield Compute(1 + 5 * k, site=CodeSite(FILE, 100, fn))
        yield Acquire(lock="out.mutex", site=CodeSite(FILE, 102, fn))
        for s in range(slots):
            yield Read(f"result[{s}]", site=CodeSite(FILE, 103, fn))
        yield Release(lock="out.mutex", site=CodeSite(FILE, 105, fn))
        for i in range(my_queries):
            yield SemAcquire(sem="load_q.items", site=CodeSite(FILE, 110, fn))
            yield Acquire(lock="load_q.mutex", site=CodeSite(FILE, 112, fn))
            yield Read(f"query[{k * my_queries + i}]", site=CodeSite(FILE, 113, fn))
            yield Release(lock="load_q.mutex", site=CodeSite(FILE, 115, fn))
            yield Compute(
                rng.randint(self.segment_work // 2, self.segment_work),
                site=CodeSite(FILE, 130, "t_seg"),
            )
            if i % 2 == 0:
                # read-only index probe (read-read pairs)
                yield Acquire(lock="index.mutex", site=CodeSite(FILE, 150, "t_vec"))
                yield Read("index.tree", site=CodeSite(FILE, 151, "t_vec"))
                yield Compute(120, site=CodeSite(FILE, 152, "t_vec"))
                yield Release(lock="index.mutex", site=CodeSite(FILE, 154, "t_vec"))
            yield Compute(
                rng.randint(self.rank_work // 2, self.rank_work),
                site=CodeSite(FILE, 170, fn),
            )
            # the ferret signature: shared ranking statistics, commutative
            yield Acquire(lock="stats.mutex", site=CodeSite(FILE, 176, "t_extract"))
            yield Write("stats.cnt_rank", op=Add(1), site=CodeSite(FILE, 177, "t_extract"))
            yield Release(lock="stats.mutex", site=CodeSite(FILE, 178, "t_extract"))
            yield Compute(rng.randint(self.gap // 2, self.gap),
                          site=CodeSite(FILE, 179, fn))
            yield Acquire(lock="stats.mutex", site=CodeSite(FILE, 180, fn))
            yield Write("stats.cnt_rank", op=Add(1), site=CodeSite(FILE, 181, fn))
            yield Release(lock="stats.mutex", site=CodeSite(FILE, 183, fn))
            yield Compute(rng.randint(self.gap // 2, self.gap),
                          site=CodeSite(FILE, 185, fn))
            yield Acquire(lock="stats.mutex", site=CodeSite(FILE, 186, fn))
            yield Write("stats.cnt_rank", op=Add(1), site=CodeSite(FILE, 187, fn))
            yield Release(lock="stats.mutex", site=CodeSite(FILE, 189, fn))
            # write this query's result slot via the uniform reference
            slot = (k + i * self.threads) % slots
            yield Acquire(lock="out.mutex", site=CodeSite(FILE, 200, fn))
            yield Write(f"result[{slot}]", op=Store(9), site=CodeSite(FILE, 201, fn))
            yield Release(lock="out.mutex", site=CodeSite(FILE, 203, fn))
            yield SemRelease(sem="out.items", site=CodeSite(FILE, 205, fn))
            if i % 7 == 3:
                # cancelled-query fast path: nothing shared (null-lock)
                yield Acquire(lock="cancel.mutex", site=CodeSite(FILE, 210, fn))
                yield Release(lock="cancel.mutex", site=CodeSite(FILE, 212, fn))
            # private per-thread bookkeeping (dynamic lock count only)
            yield from private_lock_rounds(
                "ferret.local", k, self.rounds(3),
                file=FILE, line=220, gap=self.gap // 2, cs_len=70, rng=rng,
            )

    def _output(self) -> Iterator:
        rng = self.rng("output")
        fn = "t_out"
        for _ in range(self.total_queries):
            yield SemAcquire(sem="out.items", site=CodeSite(FILE, 240, fn))
            yield Compute(rng.randint(80, 160), site=CodeSite(FILE, 242, fn))

    def programs(self) -> List[Tuple]:
        programs = [(self._worker(k), f"ferret-r{k}") for k in range(self.threads)]
        programs.append((self._loader(), "ferret-loader"))
        programs.append((self._output(), "ferret-out"))
        return programs
