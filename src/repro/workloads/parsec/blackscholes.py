"""blackscholes: embarrassingly parallel option pricing — zero locks.

Table 1: 0 dynamic locks, 0 ULCPs of any category.  The model is pure
per-thread computation; the debugging pipeline must report nothing.
"""

from repro.workloads.base import register
from repro.workloads.mix import PatternMixWorkload


@register
class Blackscholes(PatternMixWorkload):
    name = "blackscholes"
    category = "parsec"
    file = "blackscholes.c"

    pure_compute = 50
    compute_work = 600
