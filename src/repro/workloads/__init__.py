"""Workload models: the paper's 16 evaluated applications plus bug cases.

Importing this package populates the registry; use
:func:`get_workload`/:func:`workload_names` to enumerate and build them.
"""

from repro.workloads import bugs, cases, synthetic  # noqa: F401  (registration side effects)
from repro.workloads.base import (
    INPUT_SIZES,
    Workload,
    get_workload,
    register,
    workload_names,
)
from repro.workloads.bugs import Bug1SpinWait, Bug2ConsumerJoin
from repro.workloads.cases import APPENDIX_CASES
from repro.workloads.mix import PatternMixWorkload
from repro.workloads.parsec import PARSEC_WORKLOADS
from repro.workloads.realworld import REALWORLD_WORKLOADS
from repro.workloads.synthetic import MixedBag, TunableContention

#: the 16 applications of the paper's evaluation, in Table 1 order
TABLE1_ORDER = (
    "openldap",
    "mysql",
    "pbzip2",
    "transmissionBT",
    "handbrake",
    "blackscholes",
    "bodytrack",
    "canneal",
    "dedup",
    "facesim",
    "ferret",
    "fluidanimate",
    "streamcluster",
    "swaptions",
    "vips",
    "x264",
)

__all__ = [
    "Workload",
    "PatternMixWorkload",
    "register",
    "get_workload",
    "workload_names",
    "INPUT_SIZES",
    "TABLE1_ORDER",
    "PARSEC_WORKLOADS",
    "REALWORLD_WORKLOADS",
    "APPENDIX_CASES",
    "Bug1SpinWait",
    "Bug2ConsumerJoin",
    "TunableContention",
    "MixedBag",
]
