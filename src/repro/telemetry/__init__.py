"""Telemetry: spans, counters, gauges, histograms, and exporters.

The instrumentation spine of the pipeline.  Every stage — the simulated
machine, the recorder, the analysis engine, the transformation, the
replayer, the worker pool, the result cache, the salvage loader — emits
named metrics and wall-time spans into the process-wide *active sink*
when one is configured, and costs next to nothing when none is (the
default).  See :mod:`repro.telemetry.core` for the model,
:mod:`repro.telemetry.registry` for the metric inventory, and
:mod:`repro.telemetry.export` for the JSON / Prometheus / summary
exporters.

Typical library use::

    from repro import api, telemetry

    sink = telemetry.Telemetry()
    report = api.debug("mysql", telemetry=sink)
    print(telemetry.render_summary(sink))
    telemetry.write(sink, "TELEMETRY.json")

On the CLI every pipeline command accepts ``--telemetry [PATH]`` (plus
``--telemetry-format json|prom|summary`` and ``--telemetry-timings``),
and ``repro telemetry FILE`` renders a saved artifact.
"""

from repro.telemetry.core import (
    SpanNode,
    Telemetry,
    active,
    configure,
    count,
    enabled,
    gauge,
    observe,
    span,
    span_key,
    use_telemetry,
)
from repro.telemetry.export import (
    DEFAULT_PATHS,
    EXPORT_FORMATS,
    load,
    render_summary,
    to_dict,
    to_json,
    to_prometheus,
    write,
)
from repro.telemetry.registry import COUNTERS, GAUGES, HISTOGRAMS, SPANS, describe

__all__ = [
    "Telemetry",
    "SpanNode",
    "active",
    "enabled",
    "configure",
    "use_telemetry",
    "count",
    "gauge",
    "observe",
    "span",
    "span_key",
    "EXPORT_FORMATS",
    "DEFAULT_PATHS",
    "to_dict",
    "to_json",
    "to_prometheus",
    "render_summary",
    "write",
    "load",
    "COUNTERS",
    "GAUGES",
    "HISTOGRAMS",
    "SPANS",
    "describe",
]
