"""The metric name registry: every metric the pipeline emits, described.

Names are dotted, ``<subsystem>.<noun>[.<detail>]``.  The registry is the
single source of truth for exporters (Prometheus ``# HELP`` lines come
from here) and for the documentation table in ``docs/INTERNALS.md`` §10.
Emitting an unregistered name is allowed — exporters fall back to a
generic description — but every name the core pipeline emits should be
listed here so the inventory stays reviewable.

Conventions:

* counters and histograms carry **deterministic** values only (logical
  event counts, simulated nanoseconds).  Wall-clock time lives in spans.
* ``*_ns`` suffixes are simulated (virtual) nanoseconds, never wall time.
"""

from __future__ import annotations

from typing import Dict, Tuple

__all__ = ["COUNTERS", "GAUGES", "HISTOGRAMS", "SPANS", "describe", "kind_of"]

#: counter name -> description
COUNTERS: Dict[str, str] = {
    # simulated machine
    "sim.runs": "machine executions completed",
    "sim.simulated_ns": "total simulated nanoseconds across runs",
    "sim.threads": "thread programs run to completion",
    "sim.lock.acquisitions": "lock acquisitions granted",
    "sim.lock.contended": "acquisitions that had to wait",
    "sim.wait.spin_ns": "simulated ns burned spinning on busy locks",
    "sim.wait.block_ns": "simulated ns spent blocked on busy locks",
    # recording
    "record.traces": "workload executions recorded",
    "record.events": "trace events recorded",
    # analysis
    "analyze.scans": "columnar engine walks (cache misses of the scan memo)",
    "analyze.events_scanned": "events walked by the columnar engine",
    "analyze.sections": "critical sections extracted",
    "analyze.pairs": "same-lock candidate pairs classified",
    "analyze.benign_tests": "reversed-replay benign tests executed",
    "analyze.degraded_to_stream": "full loads degraded to the streaming "
                                  "path under memory pressure",
    "analyze.segments_resumed": "segments fast-forwarded from a checkpoint "
                                "instead of rescanned",
    "analyze.segments_folded": "segments folded by the incremental "
                               "(watch/progress) analysis",
    "analyze.early_stop": "watches stopped early by a stable top-K ranking",
    "segments.reindexed": "segment indexes rebuilt from a sidecar-less file",
    "ulcp.null_lock": "pairs classified null-lock",
    "ulcp.read_read": "pairs classified read-read",
    "ulcp.disjoint_write": "pairs classified disjoint-write",
    "ulcp.benign": "pairs classified benign via reversed replay",
    "ulcp.tlcp": "pairs classified as true lock contention",
    # transformation
    "transform.runs": "ULCP transformations completed",
    "transform.removed_sections": "critical sections removed by RULE 1-4",
    "transform.aux_locks": "auxiliary locks introduced by the resync plan",
    "transform.causal_edges": "causal edges in the ULCP-free topology",
    "transform.order_edges": "order edges in the ULCP-free topology",
    # replay
    "replay.runs": "replays executed (any scheme)",
    "replay.simulated_ns": "simulated ns accumulated across replays",
    "replay.elsc_stalls": "acquire attempts vetoed by the ELSC schedule",
    # worker pool / supervisor
    "pool.tasks": "tasks submitted to parallel_map",
    "pool.retries": "task attempts retried after a transient failure",
    "pool.crashes": "worker crashes observed",
    "pool.timeouts": "task attempts that exceeded their budget",
    "pool.quarantined": "tasks quarantined as TaskFailure results",
    # result cache
    "cache.trace.hits": "trace cache hits",
    "cache.trace.misses": "trace cache misses",
    "cache.blob.hits": "result blob cache hits",
    "cache.blob.misses": "result blob cache misses",
    "cache.corrupt_dropped": "corrupt cache entries dropped as misses",
    # salvage loader
    "salvage.loads": "trace loads attempted in salvage mode",
    "salvage.events_dropped": "events trimmed while salvaging damaged traces",
    # HTTP service (repro serve)
    "serve.jobs": "service jobs started (one per distinct content key)",
    "serve.computed": "service computations actually executed",
    "serve.dedup.inflight": "requests attached to an already-running job",
    "serve.dedup.done": "requests served from a retained finished job",
    "serve.jobs.async": "requests answered 202 for later polling",
    "serve.quarantined": "service jobs quarantined by the supervised pool",
    "serve.errors": "requests answered with a structured error envelope",
    "serve.requests.analyze": "requests routed to POST /v1/analyze",
    "serve.requests.transform": "requests routed to POST /v1/transform",
    "serve.requests.report": "requests routed to POST /v1/report",
    "serve.requests.timeline": "requests routed to POST /v1/timeline",
    "serve.requests.jobs": "requests routed to GET /v1/jobs/*",
    "serve.requests.health": "requests routed to GET /v1/health",
    "serve.requests.metrics": "requests routed to GET /metrics",
    "serve.requests.events": "requests routed to GET /v1/jobs/*/events (SSE)",
}

#: gauge name -> description
GAUGES: Dict[str, str] = {
    "trace.events": "events in the most recently handled trace",
    "trace.threads": "threads in the most recently handled trace",
    "runner.affinity": "CPU slots available for worker pinning "
                       "(0 = requested but unsupported)",
    "serve.watchers": "SSE event streams currently open",
}

#: histogram name -> description (power-of-two buckets, integer values)
HISTOGRAMS: Dict[str, str] = {
    "replay.end_ns": "simulated end time per replay run",
    "record.trace_events": "events per recorded trace",
    # per-endpoint request latency (wall ms — the one histogram family
    # that is intentionally nondeterministic; it never enters golden
    # comparisons, only the /metrics scrape)
    "serve.latency_ms.analyze": "wall ms per POST /v1/analyze request",
    "serve.latency_ms.transform": "wall ms per POST /v1/transform request",
    "serve.latency_ms.report": "wall ms per POST /v1/report request",
    "serve.latency_ms.timeline": "wall ms per POST /v1/timeline request",
    "serve.latency_ms.jobs": "wall ms per GET /v1/jobs/* request",
    "serve.latency_ms.health": "wall ms per GET /v1/health request",
    "serve.latency_ms.metrics": "wall ms per GET /metrics request",
    "serve.latency_ms.events": "wall ms per GET /v1/jobs/*/events stream",
}

#: span name -> description (wall time; excluded from deterministic exports)
SPANS: Dict[str, str] = {
    "record": "record one workload execution into a trace",
    "analyze.scan_trace": "fused columnar walk (sections + sharedness)",
    "analyze.scan_segments": "streaming segment-by-segment scan pass",
    "analyze.scan_sharded": "fan-out segment scan over pinned workers",
    "analyze.fold_segments": "incremental fold of a segmented trace "
                             "(watch / on_progress)",
    "analyze.pairs": "pair enumeration, Algorithm 1, benign tests",
    "transform": "RULE 1-4 transformation to the ULCP-free trace",
    "replay.run": "one seeded replay on the simulated machine",
    "runner.task": "one supervised task attempt (label: attempt)",
    "experiment.cell": "one experiment cell through the pipeline",
    "profile.stage": "one timed stage of repro profile (label: stage)",
}

_FALLBACK = "unregistered metric (see repro.telemetry.registry)"


def describe(name: str) -> str:
    """Human description of a metric or span name."""
    base = name.split("{", 1)[0]
    for table in (COUNTERS, GAUGES, HISTOGRAMS, SPANS):
        if base in table:
            return table[base]
    return _FALLBACK


def kind_of(name: str) -> str:
    """``counter`` / ``gauge`` / ``histogram`` / ``span`` / ``unknown``."""
    base = name.split("{", 1)[0]
    if base in COUNTERS:
        return "counter"
    if base in GAUGES:
        return "gauge"
    if base in HISTOGRAMS:
        return "histogram"
    if base in SPANS:
        return "span"
    return "unknown"
