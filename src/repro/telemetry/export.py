"""Telemetry exporters: canonical JSON, Prometheus text, human summary.

Determinism contract: with ``timings=False`` (the default everywhere a
file is written) an export is a pure function of the *logical* work done
— counters, gauges, histogram buckets, span call counts and nesting —
with every collection emitted in sorted order.  Two runs that perform
the same work produce byte-identical artifacts, regardless of wall-clock
noise or ``--jobs`` fan-out.  ``timings=True`` adds wall-clock span
durations (and is therefore nondeterministic by nature); the human
summary always shows wall times since it is for eyes, not diffing.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Optional, Union

from repro.telemetry import registry
from repro.telemetry.core import SpanNode, Telemetry

__all__ = [
    "EXPORT_FORMATS",
    "to_dict",
    "to_json",
    "to_prometheus",
    "render_summary",
    "write",
    "load",
]

EXPORT_FORMATS = ("json", "prom", "summary")
#: default artifact name per format
DEFAULT_PATHS = {"json": "TELEMETRY.json", "prom": "TELEMETRY.prom"}


def _snapshot(source: Union[Telemetry, dict]) -> dict:
    return source.snapshot() if isinstance(source, Telemetry) else source


def _strip_ns(encoded: dict) -> dict:
    out = {"span": encoded["span"], "calls": encoded.get("calls", 0)}
    if encoded.get("children"):
        out["children"] = [_strip_ns(c) for c in encoded["children"]]
    return out


def to_dict(source: Union[Telemetry, dict], *, timings: bool = False) -> dict:
    """The canonical export dict (sorted, version-stamped)."""
    snap = _snapshot(source)
    sums = snap.get("histogram_sums", {})
    histograms = {}
    for name in sorted(snap.get("histograms", {})):
        buckets = snap["histograms"][name]
        histograms[name] = {
            "buckets": {str(b): buckets[b] for b in sorted(buckets)},
            "count": sum(buckets.values()),
            "sum": sums.get(name, 0),
        }
    spans = snap.get("spans", [])
    if not timings:
        spans = [_strip_ns(s) for s in spans]
    return {
        "version": snap.get("version", 1),
        "counters": {k: snap.get("counters", {})[k]
                     for k in sorted(snap.get("counters", {}))},
        "gauges": {k: snap.get("gauges", {})[k]
                   for k in sorted(snap.get("gauges", {}))},
        "histograms": histograms,
        "spans": spans,
    }


def to_json(source: Union[Telemetry, dict], *, timings: bool = False) -> str:
    """Canonical JSON text (sorted keys, stable separators, newline-terminated)."""
    return json.dumps(to_dict(source, timings=timings),
                      indent=2, sort_keys=True) + "\n"


# ------------------------------------------------------------- prometheus


def _prom_name(name: str) -> str:
    cleaned = "".join(c if c.isalnum() else "_" for c in name)
    return f"repro_{cleaned}"


def _prom_escape(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")


def _walk_spans(encoded_spans, path=()) -> List[tuple]:
    flat = []
    for node in encoded_spans:
        here = path + (node["span"],)
        flat.append(("/".join(here), node))
        flat.extend(_walk_spans(node.get("children", ()), here))
    return flat


def to_prometheus(source: Union[Telemetry, dict], *, timings: bool = False) -> str:
    """Prometheus text exposition format (0.0.4), deterministically ordered."""
    data = to_dict(source, timings=timings)
    lines: List[str] = []

    for name in data["counters"]:
        metric = _prom_name(name)
        lines.append(f"# HELP {metric} {registry.describe(name)}")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {data['counters'][name]}")
    for name in data["gauges"]:
        metric = _prom_name(name)
        lines.append(f"# HELP {metric} {registry.describe(name)}")
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {data['gauges'][name]}")
    for name, hist in data["histograms"].items():
        metric = _prom_name(name)
        lines.append(f"# HELP {metric} {registry.describe(name)}")
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bucket in sorted(hist["buckets"], key=int):
            cumulative += hist["buckets"][bucket]
            upper = (1 << int(bucket)) - 1 if int(bucket) > 0 else 0
            lines.append(f'{metric}_bucket{{le="{upper}"}} {cumulative}')
        lines.append(f'{metric}_bucket{{le="+Inf"}} {hist["count"]}')
        lines.append(f"{metric}_count {hist['count']}")
        lines.append(f"{metric}_sum {hist['sum']}")

    flat = _walk_spans(data["spans"])
    if flat:
        lines.append("# HELP repro_span_calls span entries by path")
        lines.append("# TYPE repro_span_calls counter")
        for path, node in flat:
            lines.append(
                f'repro_span_calls{{span="{_prom_escape(path)}"}} {node["calls"]}'
            )
        if timings:
            lines.append("# HELP repro_span_ns wall nanoseconds by span path")
            lines.append("# TYPE repro_span_ns counter")
            for path, node in flat:
                lines.append(
                    f'repro_span_ns{{span="{_prom_escape(path)}"}} '
                    f'{node.get("ns", 0)}'
                )
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------- summary


def _render_span(node: dict, depth: int, lines: List[str]) -> None:
    indent = "  " * depth
    ns = node.get("ns")
    timing = f"{ns / 1e6:10.2f} ms" if ns is not None else " " * 13
    lines.append(f"    {indent}{node['span']:<{max(2, 40 - 2 * depth)}} "
                 f"{node['calls']:>6}x {timing}")
    for child in node.get("children", ()):
        _render_span(child, depth + 1, lines)


def render_summary(source: Union[Telemetry, dict]) -> str:
    """The human ``repro telemetry`` view: span tree, counters, the rest."""
    data = to_dict(source, timings=True) if isinstance(source, Telemetry) \
        else to_dict(source, timings=True)
    lines = ["telemetry summary"]
    if data["spans"]:
        lines.append("  spans (calls, wall time):")
        for node in data["spans"]:
            _render_span(node, 0, lines)
    if data["counters"]:
        lines.append("  counters:")
        width = max(len(n) for n in data["counters"])
        for name, value in data["counters"].items():
            lines.append(f"    {name:<{width}} {value:>12}  {registry.describe(name)}")
    if data["gauges"]:
        lines.append("  gauges:")
        width = max(len(n) for n in data["gauges"])
        for name, value in data["gauges"].items():
            lines.append(f"    {name:<{width}} {value:>12}  {registry.describe(name)}")
    if data["histograms"]:
        lines.append("  histograms:")
        for name, hist in data["histograms"].items():
            mean = hist["sum"] / hist["count"] if hist["count"] else 0.0
            lines.append(
                f"    {name}  n={hist['count']}  mean={mean:.0f}  "
                f"{registry.describe(name)}"
            )
    if len(lines) == 1:
        lines.append("  (empty: no instrumented work ran)")
    return "\n".join(lines)


# ------------------------------------------------------------------ files


def write(
    source: Union[Telemetry, dict],
    path: Union[str, Path],
    *,
    fmt: str = "json",
    timings: bool = False,
) -> Path:
    """Write one export artifact; returns the path written."""
    if fmt not in EXPORT_FORMATS:
        raise ValueError(f"unknown telemetry format {fmt!r} "
                         f"(expected one of {EXPORT_FORMATS})")
    if fmt == "json":
        text = to_json(source, timings=timings)
    elif fmt == "prom":
        text = to_prometheus(source, timings=timings)
    else:
        text = render_summary(source) + "\n"
    target = Path(path)
    target.write_text(text, encoding="utf-8")
    return target


def load(path: Union[str, Path]) -> dict:
    """Read a ``TELEMETRY.json`` back into an export dict.

    The loaded dict round-trips through every renderer here (histogram
    buckets are re-keyed to ints so :func:`to_dict` normalizes cleanly).
    """
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    histograms = {}
    sums = {}
    for name, hist in data.get("histograms", {}).items():
        histograms[name] = {int(b): n for b, n in hist.get("buckets", {}).items()}
        sums[name] = hist.get("sum", 0)
    return {
        "version": data.get("version", 1),
        "counters": data.get("counters", {}),
        "gauges": data.get("gauges", {}),
        "histograms": histograms,
        "histogram_sums": sums,
        "spans": data.get("spans", []),
    }
