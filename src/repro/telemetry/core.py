"""Telemetry core: spans, counters, gauges, histograms, and merging.

One :class:`Telemetry` object is a thread-safe in-process sink for the
pipeline's instrumentation:

* **spans** — hierarchical wall-time regions (``with span("analyze.scan"):``)
  aggregated by path into a call tree.  Nesting is tracked per OS thread,
  so concurrent threads each build their own branch without interfering.
* **counters** — monotonically increasing named totals (cache hits,
  supervisor retries, ULCPs per kind, simulated cycles, ...).
* **gauges** — last-written values (events in the trace just recorded).
* **histograms** — power-of-two bucketed distributions of *deterministic*
  integer observations (simulated nanoseconds per replay, events per
  recording).  Wall-clock values belong in spans, never in histograms —
  that convention is what keeps the metric exports byte-deterministic
  (see :mod:`repro.telemetry.export`).

The module-level *active sink* is what the instrumentation points in the
pipeline talk to, through the free functions :func:`count`, :func:`gauge`,
:func:`observe`, and :func:`span`.  With no sink configured (the default)
every one of them is a dict lookup plus an ``is None`` test — the "null
backend" — so an uninstrumented run pays effectively nothing; the
pipeline-throughput benchmark holds the enabled-vs-disabled gap under 2%.

Worker processes never share a sink with their parent.  A worker builds
its own :class:`Telemetry`, ships :meth:`Telemetry.snapshot` back with
its result, and the parent folds it in with :meth:`Telemetry.merge` *in
task order*.  Counters, histograms and span call-counts are sums, so the
merged totals of a ``--jobs N`` run equal a serial run's exactly.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "Telemetry",
    "SpanNode",
    "active",
    "enabled",
    "configure",
    "use_telemetry",
    "count",
    "gauge",
    "observe",
    "span",
]

#: snapshot schema version (bumped on incompatible layout changes)
SNAPSHOT_VERSION = 1


def span_key(name: str, labels: Optional[dict] = None) -> str:
    """Canonical node key for a span: ``name`` or ``name{k=v,...}``.

    Labels are sorted so the key never depends on call-site kwarg order.
    """
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class SpanNode:
    """One aggregated node of the span tree."""

    __slots__ = ("key", "calls", "ns", "children")

    def __init__(self, key: str):
        self.key = key
        self.calls = 0
        self.ns = 0
        self.children: Dict[str, "SpanNode"] = {}

    def child(self, key: str) -> "SpanNode":
        node = self.children.get(key)
        if node is None:
            node = self.children[key] = SpanNode(key)
        return node

    def own_ns(self) -> int:
        """Wall time not attributed to any child span."""
        return self.ns - sum(c.ns for c in self.children.values())

    def encode(self, *, timings: bool = True) -> dict:
        data = {"span": self.key, "calls": self.calls}
        if timings:
            data["ns"] = self.ns
        if self.children:
            data["children"] = [
                self.children[k].encode(timings=timings)
                for k in sorted(self.children)
            ]
        return data

    def walk(self, path: Tuple[str, ...] = ()) -> Iterator[Tuple[Tuple[str, ...], "SpanNode"]]:
        here = path + (self.key,)
        yield here, self
        for key in sorted(self.children):
            yield from self.children[key].walk(here)


class _Span:
    """An open span; a context manager handed out by :meth:`Telemetry.span`."""

    __slots__ = ("_sink", "_key", "_start")

    def __init__(self, sink: "Telemetry", key: str):
        self._sink = sink
        self._key = key
        self._start = 0

    def __enter__(self):
        self._sink._push(self._key)
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb):
        self._sink._pop(self._key, time.perf_counter_ns() - self._start)
        return False


class _NullSpan:
    """Reusable stateless no-op span for the disabled path."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_SPAN = _NullSpan()


class Telemetry:
    """A thread-safe sink for spans, counters, gauges, and histograms."""

    def __init__(self):
        self._lock = threading.Lock()
        self._local = threading.local()
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, int] = {}
        #: name -> {bucket_exponent: observation count}; bucket ``b`` holds
        #: values ``2**(b-1) < v <= 2**b - 1`` (i.e. ``v.bit_length() == b``)
        self.histograms: Dict[str, Dict[int, int]] = {}
        self._hist_sum: Dict[str, int] = {}
        self.root = SpanNode("")

    # ------------------------------------------------------------- metrics

    def count(self, name: str, n: int = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: int) -> None:
        with self._lock:
            self.gauges[name] = value

    def observe(self, name: str, value: int) -> None:
        """Record one integer observation into ``name``'s histogram."""
        bucket = int(value).bit_length() if value > 0 else 0
        with self._lock:
            buckets = self.histograms.setdefault(name, {})
            buckets[bucket] = buckets.get(bucket, 0) + 1
            self._hist_sum[name] = self._hist_sum.get(name, 0) + int(value)

    def histogram_summary(self, name: str) -> Tuple[int, int]:
        """``(count, sum)`` of a histogram's observations."""
        buckets = self.histograms.get(name, {})
        return sum(buckets.values()), self._hist_sum.get(name, 0)

    # --------------------------------------------------------------- spans

    def span(self, name: str, **labels) -> _Span:
        return _Span(self, span_key(name, labels))

    def _stack(self) -> List[SpanNode]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = [self.root]
        return stack

    def _push(self, key: str) -> None:
        stack = self._stack()
        with self._lock:
            node = stack[-1].child(key)
        stack.append(node)

    def _pop(self, key: str, elapsed_ns: int) -> None:
        stack = self._stack()
        node = stack.pop()
        if node.key != key:  # unbalanced exit: repair rather than corrupt
            stack.append(node)
            return
        with self._lock:
            node.calls += 1
            node.ns += elapsed_ns

    def spans(self) -> List[SpanNode]:
        """Top-level span nodes, sorted by key."""
        return [self.root.children[k] for k in sorted(self.root.children)]

    # ----------------------------------------------------- snapshot / merge

    def snapshot(self) -> dict:
        """A plain-data (picklable) copy of everything collected so far."""
        with self._lock:
            return {
                "version": SNAPSHOT_VERSION,
                "counters": dict(self.counters),
                "gauges": dict(self.gauges),
                "histograms": {
                    name: dict(buckets)
                    for name, buckets in self.histograms.items()
                },
                "histogram_sums": dict(self._hist_sum),
                "spans": [
                    child.encode(timings=True)
                    for _key, child in sorted(self.root.children.items())
                ],
            }

    def merge(self, snapshot: Optional[dict]) -> None:
        """Fold a worker's snapshot into this sink.

        Counters, histogram buckets, and span calls/ns are summed; gauges
        are last-write-wins.  Merging snapshots in task order makes the
        result independent of worker completion order, which is what the
        ``--jobs N == --jobs 1`` determinism regression pins down.
        """
        if not snapshot:
            return
        with self._lock:
            for name, value in snapshot.get("counters", {}).items():
                self.counters[name] = self.counters.get(name, 0) + value
            for name, value in snapshot.get("gauges", {}).items():
                self.gauges[name] = value
            for name, buckets in snapshot.get("histograms", {}).items():
                mine = self.histograms.setdefault(name, {})
                for bucket, n in buckets.items():
                    mine[bucket] = mine.get(bucket, 0) + n
            for name, total in snapshot.get("histogram_sums", {}).items():
                self._hist_sum[name] = self._hist_sum.get(name, 0) + total
            for encoded in snapshot.get("spans", ()):
                self._merge_span(self.root, encoded)

    def _merge_span(self, parent: SpanNode, encoded: dict) -> None:
        node = parent.child(encoded["span"])
        node.calls += encoded.get("calls", 0)
        node.ns += encoded.get("ns", 0)
        for child in encoded.get("children", ()):
            self._merge_span(node, child)


# ------------------------------------------------------------- active sink

_ACTIVE: Optional[Telemetry] = None
_CONFIGURE_LOCK = threading.Lock()


def active() -> Optional[Telemetry]:
    """The process-wide active sink, or ``None`` when telemetry is off."""
    return _ACTIVE


def enabled() -> bool:
    return _ACTIVE is not None


def configure(sink: Optional[Telemetry]) -> Optional[Telemetry]:
    """Install ``sink`` as the active sink (``None`` disables telemetry)."""
    global _ACTIVE
    with _CONFIGURE_LOCK:
        _ACTIVE = sink
    return sink


class use_telemetry:
    """Context manager temporarily activating (or disabling) a sink.

    Re-entrant in the sense that nested uses restore the previous sink on
    exit, so a facade call with an explicit ``telemetry=`` sink composes
    with a CLI-level ambient sink.
    """

    def __init__(self, sink: Optional[Telemetry]):
        self.sink = sink
        self._previous: Optional[Telemetry] = None

    def __enter__(self) -> Optional[Telemetry]:
        global _ACTIVE
        with _CONFIGURE_LOCK:
            self._previous = _ACTIVE
            _ACTIVE = self.sink
        return self.sink

    def __exit__(self, exc_type, exc, tb):
        global _ACTIVE
        with _CONFIGURE_LOCK:
            _ACTIVE = self._previous
        return False


# ----------------------------------------------- null-backend free functions


def count(name: str, n: int = 1) -> None:
    """Increment counter ``name`` on the active sink; no-op when disabled."""
    sink = _ACTIVE
    if sink is not None:
        sink.count(name, n)


def gauge(name: str, value: int) -> None:
    """Set gauge ``name`` on the active sink; no-op when disabled."""
    sink = _ACTIVE
    if sink is not None:
        sink.gauge(name, value)


def observe(name: str, value: int) -> None:
    """Record a histogram observation; no-op when disabled."""
    sink = _ACTIVE
    if sink is not None:
        sink.observe(name, value)


def span(name: str, **labels):
    """Open a span on the active sink; a shared no-op when disabled."""
    sink = _ACTIVE
    if sink is None:
        return _NULL_SPAN
    return sink.span(name, **labels)
