"""Vectorized trace validation for columnar traces.

Strategy: per thread, a set of cheap array checks proves the thread
*clean* (the overwhelmingly common case — ``transform`` validates every
output trace it produces); any thread that trips a check falls back to
the reference event-object walk for that thread alone, reproducing the
exact message list in the exact order.  Schedule checks run from one
vectorized acquire gather.
"""

from __future__ import annotations

from typing import Dict, List, Set

import numpy as np

from repro.trace.interning import (
    ACQUIRE_CODE,
    POST_CODE,
    RELEASE_CODE,
    THREAD_END_CODE,
    THREAD_START_CODE,
    WAIT_CODE,
)


def _post_tokens(trace) -> Set:
    tokens: Set = set()
    for column in trace.columns.values():
        if not len(column.kind):
            continue
        k = np.frombuffer(column.kind, dtype=np.int8)
        for i in np.flatnonzero(k == POST_CODE).tolist():
            tokens.add(column.tokens.get(i))
    return tokens


def _thread_clean(tid, column, post_tokens) -> bool:
    """True when the reference walk would report nothing for this thread."""
    n = len(column.kind)
    if not n:
        return True
    # tid mismatches cannot occur: columnar events materialize with the
    # column's own tid
    k = np.frombuffer(column.kind, dtype=np.int8)
    t = np.frombuffer(column.t, dtype=np.int64)
    if n > 1 and bool((np.diff(t) < 0).any()):
        return False
    pos = np.flatnonzero(k == THREAD_START_CODE)
    if len(pos) and (len(pos) > 1 or pos[0] != 0):
        return False
    pos = np.flatnonzero(k == THREAD_END_CODE)
    if len(pos) and (len(pos) > 1 or pos[-1] != n - 1):
        return False
    lock_pos = np.flatnonzero((k == ACQUIRE_CODE) | (k == RELEASE_CODE))
    if len(lock_pos):
        kinds = column.kind
        lock_ids = column.lock_id
        held = set()
        for i in lock_pos.tolist():
            lid = lock_ids[i]
            if kinds[i] == ACQUIRE_CODE:
                if lid in held:
                    return False
                held.add(lid)
            else:
                if lid not in held:
                    return False
                held.discard(lid)
        if held:
            return False
    wait_pos = np.flatnonzero(k == WAIT_CODE)
    if len(wait_pos):
        reasons = column.reasons
        tokens = column.tokens
        for i in wait_pos.tolist():
            if reasons.get(i, "") == "posted" \
                    and tokens.get(i) not in post_tokens:
                return False
    return True


def problems_columnar(trace) -> List[str]:
    """Vectorized twin of ``trace.validate.problems`` for columnar traces."""
    from repro.trace.validate import _schedule_problems, _thread_problems

    post_tokens = _post_tokens(trace)
    issues: List[str] = []
    for tid, column in trace.columns.items():
        if not _thread_clean(tid, column, post_tokens):
            issues.extend(
                _thread_problems(tid, trace.threads[tid], post_tokens)
            )

    if trace.lock_schedule:
        acquires_by_lock: Dict[str, Set[str]] = {}
        lock_name = trace.tables.locks.name
        for column in trace.columns.values():
            if not len(column.kind):
                continue
            k = np.frombuffer(column.kind, dtype=np.int8)
            pos = np.flatnonzero(k == ACQUIRE_CODE)
            if not len(pos):
                continue
            lock_ids = column.lock_id
            uids = column.uids
            for i in pos.tolist():
                lid = lock_ids[i]
                name = lock_name(lid) if lid >= 0 else ""
                acquires_by_lock.setdefault(name, set()).add(uids[i])
        issues.extend(
            _schedule_problems(trace.lock_schedule, {
                lock: acquires_by_lock.get(lock, set())
                for lock in trace.lock_schedule
            })
        )
    return issues
