"""Kernel backend selection: vectorized (numpy) vs pure Python.

The analysis hot paths — the engine scan, the write-timeline collect,
the benign-evidence stream, the timeline lane build, the transform
rewrite and output validation — each exist twice: the original pure
Python walk (always available, the reference for byte-identical output)
and a numpy twin operating directly on the interned id columns of
:mod:`repro.trace.interning`.

This module picks between them:

* numpy present -> backend ``"numpy"`` (installed via ``repro[fast]``),
* numpy absent, or ``REPRO_NO_NUMPY`` set to a non-empty value ->
  backend ``"python"``.

The choice is consulted *per call* (:func:`use_numpy`), not bound at
import, so tests and benchmarks can flip backends in-process via
:func:`set_backend` and compare outputs from one interpreter.

Both backends must produce byte-identical results everywhere — the
equivalence oracle remains :mod:`repro.analysis.reference`, and
``tests/analysis/test_kernel_backends.py`` holds all three to it.

Per-kernel wall times accumulate in a module-level registry
(:func:`record` / :func:`timings`) so ``repro profile`` and
``repro selfcheck`` can attribute regressions to a specific kernel.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Sequence

__all__ = [
    "HAVE_NUMPY",
    "backend",
    "use_numpy",
    "set_backend",
    "record",
    "timings",
    "reset_timings",
    "mask_from_ids",
]

#: set REPRO_NO_NUMPY=1 to force the pure-Python backend even when
#: numpy is importable (the forced-fallback knob from the CI matrix)
_DISABLED = bool(os.environ.get("REPRO_NO_NUMPY"))

if not _DISABLED:
    try:
        import numpy  # noqa: F401
        HAVE_NUMPY = True
    except ImportError:  # pragma: no cover - exercised via REPRO_NO_NUMPY
        HAVE_NUMPY = False
else:
    HAVE_NUMPY = False

_backend = "numpy" if HAVE_NUMPY else "python"


def backend() -> str:
    """The active kernel backend: ``"numpy"`` or ``"python"``."""
    return _backend


def use_numpy() -> bool:
    """True when the vectorized kernels should run (checked per call)."""
    return _backend == "numpy"


def set_backend(name: str) -> str:
    """Force a backend (``"numpy"``/``"python"``/``"auto"``); returns it.

    Requesting ``"numpy"`` without numpy installed raises — silently
    running the slow path would invalidate any benchmark asking for it.
    """
    global _backend
    if name == "auto":
        name = "numpy" if HAVE_NUMPY else "python"
    if name not in ("numpy", "python"):
        raise ValueError(f"unknown kernel backend: {name!r}")
    if name == "numpy" and not HAVE_NUMPY:
        raise RuntimeError(
            "numpy backend requested but numpy is unavailable "
            "(not installed, or disabled via REPRO_NO_NUMPY)"
        )
    _backend = name
    return _backend


# ------------------------------------------------- per-kernel timings

_timings: Dict[str, float] = {}
_calls: Dict[str, int] = {}


def record(kernel: str, seconds: float) -> None:
    """Accumulate one kernel invocation's wall time."""
    _timings[kernel] = _timings.get(kernel, 0.0) + seconds
    _calls[kernel] = _calls.get(kernel, 0) + 1


def timings() -> Dict[str, Dict[str, float]]:
    """Accumulated ``{kernel: {"seconds": s, "calls": n}}`` since reset."""
    return {
        name: {"seconds": _timings[name], "calls": _calls.get(name, 0)}
        for name in sorted(_timings)
    }


def reset_timings() -> None:
    _timings.clear()
    _calls.clear()


# --------------------------------------------------- shared helpers

#: below this many ids the Python loop beats the packbits round trip
_SMALL_MASK = 32


def mask_from_ids(ids: Sequence[int], np_module=None) -> int:
    """OR of ``1 << id`` over ``ids`` (a numpy int array or any iterable).

    Large batches go through ``np.packbits`` -> ``int.from_bytes`` so
    the cost is linear in the byte length of the result, not the number
    of set bits times the mask width.
    """
    np = np_module
    if np is not None and len(ids) > _SMALL_MASK:
        u = np.unique(np.asarray(ids, dtype=np.int64))
        bits = np.zeros(int(u[-1]) + 1, dtype=np.uint8)
        bits[u] = 1
        return int.from_bytes(
            np.packbits(bits, bitorder="little").tobytes(), "little"
        )
    mask = 0
    for aid in ids:
        mask |= 1 << int(aid)
    return mask


def iter_mask_ids(mask: int):
    """Iterate the set bit positions of an int bitmask, ascending."""
    aid = 0
    while mask:
        if mask & 1:
            yield aid
        mask >>= 1
        aid += 1


def thread_arrays(column, np):
    """numpy views over a :class:`ColumnarThread`'s dense arrays.

    Zero-copy ``frombuffer`` views; callers must treat them read-only.
    Returns ``(kind, t, duration, t_request, value, lock_id, addr_id,
    flags)``.
    """
    return (
        np.frombuffer(column.kind, dtype=np.int8),
        np.frombuffer(column.t, dtype=np.int64),
        np.frombuffer(column.duration, dtype=np.int64),
        np.frombuffer(column.t_request, dtype=np.int64),
        np.frombuffer(column.value, dtype=np.int64),
        np.frombuffer(column.lock_id, dtype=np.int32),
        np.frombuffer(column.addr_id, dtype=np.int32),
        np.frombuffer(column.flags, dtype=np.uint8),
    )
