"""Vectorized write-timeline collection and benign-evidence filtering.

The benign test itself (reversed replay of two small CS bodies) is not
worth vectorizing — it touches a handful of events per pair.  What *is*
hot is locating the events it needs inside a large trace:

* :func:`collect_writes` — the ``WriteTimeline`` history gather: one
  ``flatnonzero`` per thread column finds every WRITE, and only those
  slots are touched from Python,
* :func:`evidence_hits` — pass 2 of the streaming analysis: a boolean
  address-id lookup table turns "READ/WRITE whose address is in the
  wanted mask" into one gather per chunk.

Tuple contents are built from the original ``array`` columns (not the
numpy views), so values are plain Python ints — byte-identical to the
pure path's.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.trace.interning import READ_CODE, WRITE_CODE
from repro.trace.trace import _uid_order


def collect_writes(core) -> Dict[str, List[Tuple]]:
    """Per-address ``(t, order_key, value)`` write histories of a core."""
    writes: Dict[str, List[Tuple]] = {}
    addr_name = core.tables.addrs.name
    for column in core.columns.values():
        if not len(column.kind):
            continue
        k = np.frombuffer(column.kind, dtype=np.int8)
        hits = np.flatnonzero(k == WRITE_CODE)
        if not len(hits):
            continue
        ts = column.t
        values = column.value
        uids = column.uids
        addr_ids = column.addr_id
        for i in hits.tolist():
            writes.setdefault(addr_name(addr_ids[i]), []).append(
                (ts[i], _uid_order(uids[i]), values[i])
            )
    return writes


def wanted_lut(mask: int, size: int):
    """Bool lookup table over address ids for an int bitmask."""
    lut = np.zeros(max(size, 1), dtype=bool)
    aid = 0
    while mask:
        if mask & 1:
            lut[aid] = True
        mask >>= 1
        aid += 1
    return lut


def evidence_hits(column, lut) -> List[int]:
    """Chunk positions of READ/WRITE events whose address is wanted."""
    if not len(column.kind):
        return []
    k = np.frombuffer(column.kind, dtype=np.int8)
    rw = np.flatnonzero((k == READ_CODE) | (k == WRITE_CODE))
    if not len(rw):
        return []
    aid = np.frombuffer(column.addr_id, dtype=np.int32)
    return rw[lut[aid[rw]]].tolist()
