"""Vectorized engine scan: numpy twin of ``analysis.engine`` walks.

The walk itself stays sparse — critical-section open/close is a Python
loop, but only over the *lock events* (``flatnonzero`` of the kind
column), which are typically a small fraction of the trace.  The dense
work — finding reads/writes, discovering shared addresses, accumulating
access-set bitmasks — runs as array operations:

* ``searchsorted(read_positions, lock_positions)`` splits each thread's
  reads/writes into inter-lock-event spans in one shot,
* each span ORs into the open sections' masks as a single
  :func:`repro.kernels.mask_from_ids` batch instead of one
  ``mask |= 1 << aid`` per event,
* sharedness is ``unique`` over the span of touched address ids plus
  the same first-toucher map the pure walk keeps.

Byte-equivalence contract: identical sections (uids, anchors, masks,
bodies/spans), identical ``TraceError`` messages raised at the same
first offending lock event, identical ``TraceScan`` fields.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.analysis.sections import CriticalSection
from repro.errors import TraceError
from repro.kernels import mask_from_ids
from repro.trace.interning import (
    ACQUIRE_CODE,
    READ_CODE,
    RELEASE_CODE,
    WRITE_CODE,
)


def _discover_shared(aid, r_pos, w_pos, tid_id, first_toucher, shared_ids):
    """First-toucher sharedness over one thread's (chunk's) accesses."""
    if len(r_pos) and len(w_pos):
        touched = np.unique(np.concatenate((aid[r_pos], aid[w_pos])))
    elif len(r_pos):
        touched = np.unique(aid[r_pos])
    elif len(w_pos):
        touched = np.unique(aid[w_pos])
    else:
        return
    for a in touched.tolist():
        if first_toucher.setdefault(a, tid_id) != tid_id:
            shared_ids.add(a)


def scan_core(core, scan, first_toucher: Dict[int, int]) -> None:
    """Vectorized body of ``engine._scan_trace`` (before finalize)."""
    tables = core.tables
    lock_name = tables.locks.name
    sections = scan.sections
    shared_ids = scan.shared_ids

    for tid, column in core.columns.items():
        n = len(column.kind)
        scan.events += n
        if not n:
            continue
        k = np.frombuffer(column.kind, dtype=np.int8)
        aid = np.frombuffer(column.addr_id, dtype=np.int32)
        kinds = column.kind
        lock_ids = column.lock_id
        uids = column.uids
        view = core.threads[tid]
        tid_id = column.tid_id

        r_pos = np.flatnonzero(k == READ_CODE)
        w_pos = np.flatnonzero(k == WRITE_CODE)
        _discover_shared(aid, r_pos, w_pos, tid_id, first_toucher, shared_ids)

        lock_pos = np.flatnonzero((k == ACQUIRE_CODE) | (k == RELEASE_CODE))
        if not len(lock_pos):
            continue
        # span masks iterate Python lists: indexing numpy slices yields
        # boxed scalars, which on the typical tiny inter-lock span costs
        # more than the whole vectorized split saved
        r_aid = aid[r_pos].tolist()
        w_aid = aid[w_pos].tolist()
        r_cut = np.searchsorted(r_pos, lock_pos).tolist()
        w_cut = np.searchsorted(w_pos, lock_pos).tolist()

        open_by_lock: Dict[int, CriticalSection] = {}
        stack = []
        read_masks = []
        write_masks = []
        rk = wk = 0
        for j, i in enumerate(lock_pos.tolist()):
            cr = r_cut[j]
            cw = w_cut[j]
            if stack:
                if cr > rk:
                    m = mask_from_ids(r_aid[rk:cr], np)
                    read_masks[:] = [x | m for x in read_masks]
                if cw > wk:
                    m = mask_from_ids(w_aid[wk:cw], np)
                    write_masks[:] = [x | m for x in write_masks]
            rk = cr
            wk = cw
            lid = lock_ids[i]
            if kinds[i] == ACQUIRE_CODE:
                if lid in open_by_lock:
                    raise TraceError(
                        f"{tid}: nested acquire of same lock {lock_name(lid)}"
                    )
                cs = CriticalSection._open(
                    uids[i], tid, lock_name(lid), view[i],
                    uids[i - 1] if i > 0 else None,
                )
                cs._body_source = (view, i + 1, i + 1)  # end patched at RELEASE
                open_by_lock[lid] = cs
                stack.append(cs)
                read_masks.append(0)
                write_masks.append(0)
                sections.append(cs)
            else:
                cs = open_by_lock.pop(lid, None)
                if cs is None:
                    raise TraceError(f"{tid}: release of unheld {lock_name(lid)}")
                depth = stack.index(cs)
                stack.pop(depth)
                cs.read_mask = read_masks.pop(depth)
                cs.write_mask = write_masks.pop(depth)
                cs.release = view[i]
                cs._body_source = (view, cs._body_source[1], i)
                if i + 1 < n:
                    cs.post_anchor = uids[i + 1]
        if open_by_lock:
            raise TraceError(f"{tid}: unclosed critical sections")


def walk_chunk(tid, column, base, st, scan, first_toucher, lock_name) -> None:
    """Vectorized twin of the per-chunk walk in ``engine.scan_segments``.

    ``st`` is the thread's carried ``_ThreadScanState``; masks of
    sections still open from earlier chunks keep accumulating here
    (head span before the chunk's first lock event, tail span after its
    last).  The caller accounts ``scan.events`` and runs the end-of-
    stream unclosed check.
    """
    n = len(column.kind)
    if not n:
        return
    uids = column.uids
    if st.pending_post:
        for cs in st.pending_post:
            cs.post_anchor = uids[0]
        st.pending_post.clear()

    k = np.frombuffer(column.kind, dtype=np.int8)
    aid = np.frombuffer(column.addr_id, dtype=np.int32)
    kinds = column.kind
    lock_ids = column.lock_id
    tid_id = column.tid_id
    sections = scan.sections
    body_spans = scan.body_spans

    r_pos = np.flatnonzero(k == READ_CODE)
    w_pos = np.flatnonzero(k == WRITE_CODE)
    _discover_shared(aid, r_pos, w_pos, tid_id, first_toucher, scan.shared_ids)

    r_aid = aid[r_pos].tolist()
    w_aid = aid[w_pos].tolist()
    stack = st.stack
    read_masks = st.read_masks
    write_masks = st.write_masks
    open_by_lock = st.open_by_lock
    rk = wk = 0

    lock_pos = np.flatnonzero((k == ACQUIRE_CODE) | (k == RELEASE_CODE))
    if len(lock_pos):
        r_cut = np.searchsorted(r_pos, lock_pos).tolist()
        w_cut = np.searchsorted(w_pos, lock_pos).tolist()
        for j, i in enumerate(lock_pos.tolist()):
            cr = r_cut[j]
            cw = w_cut[j]
            if stack:
                if cr > rk:
                    m = mask_from_ids(r_aid[rk:cr], np)
                    read_masks[:] = [x | m for x in read_masks]
                if cw > wk:
                    m = mask_from_ids(w_aid[wk:cw], np)
                    write_masks[:] = [x | m for x in write_masks]
            rk = cr
            wk = cw
            lid = lock_ids[i]
            if kinds[i] == ACQUIRE_CODE:
                if lid in open_by_lock:
                    raise TraceError(
                        f"{tid}: nested acquire of same lock "
                        f"{lock_name(lid)}"
                    )
                cs = CriticalSection._open(
                    uids[i], tid, lock_name(lid), column.event(i),
                    uids[i - 1] if i > 0 else st.last_uid,
                )
                body_spans[cs.uid] = (tid, base + i + 1, base + i + 1)
                open_by_lock[lid] = cs
                stack.append(cs)
                read_masks.append(0)
                write_masks.append(0)
                sections.append(cs)
            else:
                cs = open_by_lock.pop(lid, None)
                if cs is None:
                    raise TraceError(
                        f"{tid}: release of unheld {lock_name(lid)}"
                    )
                depth = stack.index(cs)
                stack.pop(depth)
                cs.read_mask = read_masks.pop(depth)
                cs.write_mask = write_masks.pop(depth)
                cs.release = column.event(i)
                span = body_spans[cs.uid]
                body_spans[cs.uid] = (tid, span[1], base + i)
                if i + 1 < n:
                    cs.post_anchor = uids[i + 1]
                else:
                    st.pending_post.append(cs)
    if stack:
        # tail span: the chunk ends inside open sections
        if rk < len(r_aid):
            m = mask_from_ids(r_aid[rk:], np)
            read_masks[:] = [x | m for x in read_masks]
        if wk < len(w_aid):
            m = mask_from_ids(w_aid[wk:], np)
            write_masks[:] = [x | m for x in write_masks]
    st.last_uid = uids[n - 1]
