"""Vectorized timeline lane build: numpy twin of ``timeline.build``.

The raw lane is a list of span tuples that ``_finish_lane`` sorts before
materializing, and tuples are totally ordered (uids tie-break), so the
*multiset* of spans is all that must match — append order is free.  That
makes the dense kinds bulk-extractable:

* COMPUTE spans (the bulk of most traces) from one ``flatnonzero``,
* READ/WRITE overhead spans likewise (only when ``mem_cost`` is set),
* WAIT/SLEEP blocked spans from their (sparse) positions,

while the order-sensitive remainder — lock acquire/release and CS
enter/exit stack pushes/pops, thread start/end markers — walks only its
own sparse positions in Python, in event order, with carried
``_LaneState`` exactly like the pure walk (so the streaming path can
call this per chunk).
"""

from __future__ import annotations

import numpy as np

from repro.trace.interning import (
    ACQUIRE_CODE,
    COMPUTE_CODE,
    CS_ENTER_CODE,
    CS_EXIT_CODE,
    READ_CODE,
    RELEASE_CODE,
    SLEEP_CODE,
    THREAD_END_CODE,
    THREAD_START_CODE,
    WAIT_CODE,
    WRITE_CODE,
)

#: kinds whose handling is stateful (stack/marker) and stays a sparse walk
_SPARSE_CODES = np.array(
    [ACQUIRE_CODE, RELEASE_CODE, CS_ENTER_CODE, CS_EXIT_CODE,
     THREAD_START_CODE, THREAD_END_CODE],
    dtype=np.int8,
)


def walk_column(tid, column, st, timeline, kinds_get, lock_cost, mem_cost,
                codes) -> None:
    """Vectorized twin of ``timeline.build._walk_column``.

    ``codes`` is the ``(_C_COMPUTE, _C_CS, _C_LOCK_WAIT, _C_BLOCKED,
    _C_OVERHEAD)`` tuple from the caller's module (kept there so the
    interval-kind coding has a single owner).
    """
    c_compute, c_cs, c_lock_wait, c_blocked, c_overhead = codes
    n = len(column.kind)
    if not n:
        return
    k = np.frombuffer(column.kind, dtype=np.int8)
    t_np = np.frombuffer(column.t, dtype=np.int64)
    dur_np = np.frombuffer(column.duration, dtype=np.int64)
    raw = st.raw

    pos = np.flatnonzero((k == COMPUTE_CODE) & (dur_np > 0))
    if len(pos):
        raw.extend(
            (ts, te, c_compute, "", "", "", "", False, "")
            for ts, te in zip((t_np[pos] - dur_np[pos]).tolist(),
                              t_np[pos].tolist())
        )

    if mem_cost:
        pos = np.flatnonzero((k == READ_CODE) | (k == WRITE_CODE))
        if len(pos):
            raw.extend(
                (ti, ti + mem_cost, c_overhead, "", "", "", "", False, "")
                for ti in t_np[pos].tolist()
            )

    pos = np.flatnonzero(((k == WAIT_CODE) | (k == SLEEP_CODE)) & (dur_np > 0))
    if len(pos):
        reasons = column.reasons
        t = column.t
        duration = column.duration
        raw.extend(
            (t[i] - duration[i], t[i], c_blocked,
             "", "", "", "", False, reasons.get(i, ""))
            for i in pos.tolist()
        )

    sparse = np.flatnonzero(np.isin(k, _SPARSE_CODES))
    if len(sparse):
        kind = column.kind
        t = column.t
        t_request = column.t_request
        lock_id = column.lock_id
        flags = column.flags
        uids = column.uids
        tokens = column.tokens
        lock_name = column.tables.locks.name
        add = raw.append
        open_cs = st.open_cs
        for i in sparse.tolist():
            code = kind[i]
            ti = t[i]
            if code == ACQUIRE_CODE:
                uid = uids[i]
                name = lock_name(lock_id[i]) if lock_id[i] >= 0 else ""
                if ti > t_request[i]:
                    add((t_request[i], ti, c_lock_wait,
                         name, uid, kinds_get(uid, ""),
                         "", bool(flags[i] & 1), ""))
                if lock_cost:
                    add((ti, ti + lock_cost, c_overhead,
                         name, "", "", "", False, ""))
                open_cs.setdefault(lock_id[i], []).append((ti, uid, name))
            elif code == RELEASE_CODE:
                stack = open_cs.get(lock_id[i])
                if stack:
                    t_open, uid, name = stack.pop()
                    add((t_open, ti, c_cs,
                         name, uid, kinds_get(uid, ""), "", False, ""))
                # unmatched release (salvaged prefix): nothing to close
                if lock_cost:
                    name = lock_name(lock_id[i]) if lock_id[i] >= 0 else ""
                    add((ti, ti + lock_cost, c_overhead,
                         name, "", "", "", False, ""))
            elif code == CS_ENTER_CODE:
                uid = tokens.get(i, uids[i])
                name = lock_name(lock_id[i]) if lock_id[i] >= 0 else ""
                open_cs.setdefault(lock_id[i], []).append((ti, uid, name))
            elif code == CS_EXIT_CODE:
                stack = open_cs.get(lock_id[i])
                if stack:
                    t_open, uid, name = stack.pop()
                    add((t_open, ti, c_cs,
                         name, uid, kinds_get(uid, ""),
                         "", False, "transformed"))
            elif code == THREAD_START_CODE:
                timeline.thread_start[tid] = ti
            else:
                timeline.thread_end[tid] = ti

    chunk_max = int(t_np.max())
    if chunk_max > st.last_t:
        st.last_t = chunk_max


def acquire_positions(column):
    """Positions of ACQUIRE events in one column (for holder maps)."""
    if not len(column.kind):
        return []
    k = np.frombuffer(column.kind, dtype=np.int8)
    return np.flatnonzero(k == ACQUIRE_CODE).tolist()
