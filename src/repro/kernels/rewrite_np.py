"""Vectorized ULCP-free trace rewrite: numpy twin of ``transform._rewrite``.

The pure rewrite walks every event object and re-emits it; for large
traces that walk (and, on a columnar input, materializing an event
object per trace event just to re-emit it) dominates the transform
stage.  Here the rewrite happens directly on the interned columns:

* ACQUIRE/RELEASE positions come from one ``flatnonzero`` per thread,
* removed sections' lock events are dropped during a single masked copy
  per array (only lock events can be dropped, so survivor indexes are
  ``position - dropped_before(position)`` — no full-length index map),
* surviving lock events are retyped in place on the copy
  (CS_ENTER/CS_EXIT codes, payload fields zeroed, token = the section
  uid) — no event objects exist at any point,

and the result is a :class:`~repro.trace.interning.ColumnarTrace`
sharing the source core's intern tables.  Serialization re-derives
canonical tables (`serialize.write_trace`), so the emitted bytes are
identical to the pure path's ``Trace``.
"""

from __future__ import annotations

from itertools import compress
from typing import List

import numpy as np

from repro.trace.interning import (
    ACQUIRE_CODE,
    CS_ENTER_CODE,
    CS_EXIT_CODE,
    FLAG_SPIN,
    RELEASE_CODE,
    ColumnarThread,
    ColumnarTrace,
)
from repro.trace.trace import TraceMeta

_ARRAY_DTYPES = (
    ("kind", np.int8),
    ("t", np.int64),
    ("duration", np.int64),
    ("t_request", np.int64),
    ("value", np.int64),
    ("lock_id", np.int32),
    ("addr_id", np.int32),
    ("flags", np.uint8),
)


def rewrite(core, sections, plan) -> ColumnarTrace:
    """Produce the marker-based ULCP-free trace as a columnar core."""
    release_to_cs = {cs.release.uid: cs for cs in sections}
    acquire_to_cs = {cs.uid: cs for cs in sections}
    removed = plan.removed

    meta = core.meta
    new_meta = TraceMeta(
        name=f"{meta.name}+ulcpfree" if meta.name else "ulcpfree",
        seed=meta.seed,
        num_cores=meta.num_cores,
        lock_cost=meta.lock_cost,
        mem_cost=meta.mem_cost,
        params={**meta.params, "transformed": True},
    )
    out = ColumnarTrace(new_meta, core.side, {}, tables=core.tables)

    for tid, column in core.columns.items():
        out.columns[tid] = _rewrite_column(
            tid, column, acquire_to_cs, release_to_cs, removed
        )
    return out


def _rewrite_column(tid, column, acquire_to_cs, release_to_cs, removed):
    tables = column.tables
    n = len(column.kind)
    new = ColumnarThread(tid, column.tid_id, tables)
    if not n:
        return new
    uids = column.uids
    k = np.frombuffer(column.kind, dtype=np.int8)
    acq_pos = np.flatnonzero(k == ACQUIRE_CODE).tolist()
    rel_pos = np.flatnonzero(k == RELEASE_CODE).tolist()

    kept_acq: List[int] = []
    kept_rel: List[int] = []
    drop: List[int] = []
    rel_token: List[str] = []
    for i in acq_pos:
        cs = acquire_to_cs[uids[i]]
        if cs.uid in removed:
            drop.append(i)
        else:
            kept_acq.append(i)
    for i in rel_pos:
        cs = release_to_cs.get(uids[i])
        if cs is None or cs.uid in removed:
            drop.append(i)
        else:
            kept_rel.append(i)
            rel_token.append(cs.uid)

    acq_np = np.asarray(kept_acq, dtype=np.int64)
    rel_np = np.asarray(kept_rel, dtype=np.int64)
    if drop:
        # only lock events drop, so a survivor's new index is its old one
        # minus the dropped positions before it
        drop_np = np.sort(np.asarray(drop, dtype=np.int64))
        new_acq = acq_np - np.searchsorted(drop_np, acq_np)
        new_rel = rel_np - np.searchsorted(drop_np, rel_np)
        keep = np.ones(n, dtype=bool)
        keep[drop_np] = False
        keep_list = keep.tolist()
        new.uids = list(compress(uids, keep_list))
        new.sites = list(compress(column.sites, keep_list))

        def ni(p):
            return p - int(np.searchsorted(drop_np, p))
    else:
        new_acq = acq_np
        new_rel = rel_np
        keep = None
        new.uids = list(uids)
        new.sites = list(column.sites)

        def ni(p):
            return p

    # one masked copy per array, then retype the surviving lock events in
    # place on the output: payload fields reset exactly as the pure
    # path's fresh TraceEvent construction does
    new_lock = np.concatenate((new_acq, new_rel))
    for name, dtype in _ARRAY_DTYPES:
        src = np.frombuffer(getattr(column, name), dtype=dtype)
        out = src[keep] if keep is not None else src.copy()
        if name == "kind":
            out[new_acq] = CS_ENTER_CODE
            out[new_rel] = CS_EXIT_CODE
        elif name in ("duration", "t_request", "value"):
            out[new_lock] = 0
        elif name == "addr_id":
            out[new_lock] = -1
        elif name == "flags":
            out[new_acq] &= FLAG_SPIN  # spin carries over to enter
            out[new_rel] = 0
        # memcpy straight out of the ndarray buffer (no tobytes copy)
        getattr(new, name).frombytes(memoryview(out).cast("B"))

    # sparse payloads: reindex survivors; retyped lock events shed any
    # original payload and carry only their section-uid token
    lock_set = set(kept_acq)
    lock_set.update(kept_rel)
    dropped_set = set(drop)
    for attr in ("ops", "tokens", "reasons", "woken"):
        old = getattr(column, attr)
        if old:
            setattr(new, attr, {
                ni(p): v for p, v in old.items()
                if p not in dropped_set and p not in lock_set
            })
    tokens = new.tokens
    for j, p in enumerate(new_acq.tolist()):
        tokens[p] = uids[kept_acq[j]]  # cs.uid is its acquire uid
    for j, p in enumerate(new_rel.tolist()):
        tokens[p] = rel_token[j]
    return new
